(* Tests for the crash-tolerant campaign runner: job identity, atomic
   checkpoints (including torn files), the process supervisor's retry /
   quarantine / timeout / chaos behaviour, and the byte-determinism of
   the merged snapshot.  The full CLI cycle — chaos run, resume,
   byte-compare against an uninterrupted run — lives in the dune e2e
   rule next to this file. *)

module Job = Smt_campaign.Job
module Ckpt = Smt_campaign.Checkpoint
module Manifest = Smt_campaign.Manifest
module Sup = Smt_campaign.Supervisor
module Merge = Smt_campaign.Merge
module Telemetry = Smt_campaign.Telemetry
module Heartbeat = Smt_campaign.Heartbeat
module Snapshot = Smt_obs.Snapshot
module Obs_json = Smt_obs.Obs_json
module Trace = Smt_obs.Trace
module Metrics = Smt_obs.Metrics
module Prof = Smt_obs.Prof

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path

let with_temp_dir f =
  let path = Filename.temp_file "smt_campaign" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  Fun.protect ~finally:(fun () -> rm_rf path) (fun () -> f path)

let job c t g s = { Job.jb_circuit = c; jb_technique = t; jb_guard = g; jb_seed = s }

let sample_workload name =
  Snapshot.workload ~name
    ~qor:[ ("area_um2", 12.5); ("standby_nw", 3.25) ]
    ~counters:[ ("sta.arrival_evals", 42) ]
    ~stage_ms:[ ("replace", 1.5) ]

let sample_stats =
  {
    Prof.minor_words = 1000.;
    promoted_words = 10.;
    major_words = 20.;
    minor_collections = 2;
    major_collections = 1;
    compactions = 0;
    top_heap_words = 4096;
  }

let done_checkpoint ?(attempt = 1) ?(duration = 0.) ?(prof = []) j =
  {
    Ckpt.cp_version = Ckpt.schema_version;
    cp_job = j;
    cp_status = Ckpt.Done;
    cp_attempt = attempt;
    cp_time = 1000.0;
    cp_duration_s = duration;
    cp_prof = prof;
    cp_workload = Some (sample_workload (Job.name j));
  }

(* ------------------------------------------------------------------ *)
(* Job identity and matrix                                             *)
(* ------------------------------------------------------------------ *)

let test_job_id_and_name () =
  let j = job "circuit_a" "improved" "off" 3 in
  Alcotest.(check string) "filename-safe id" "circuit_a~improved~off~s3" (Job.id j);
  Alcotest.(check string) "workload name" "circuit_a/improved/off/s3" (Job.name j)

let test_job_matrix_order () =
  let m =
    Job.matrix ~circuits:[ "a"; "b" ] ~techniques:[ "dual"; "improved" ]
      ~guards:[ "off" ] ~seeds:[ 1; 2 ]
  in
  Alcotest.(check int) "cross product size" 8 (List.length m);
  Alcotest.(check string) "circuits outermost" "a~dual~off~s1" (Job.id (List.hd m));
  Alcotest.(check string) "seeds innermost" "a~dual~off~s2"
    (Job.id (List.nth m 1));
  let ids = List.map Job.id m in
  Alcotest.(check int) "ids injective" 8
    (List.length (List.sort_uniq compare ids))

let test_job_json_roundtrip () =
  let j = job "circuit_b" "conventional" "warn" 7 in
  match Obs_json.parse (Job.to_json j) with
  | Error e -> Alcotest.fail e
  | Ok doc -> (
    match Job.of_json doc with
    | Error e -> Alcotest.fail e
    | Ok j' -> Alcotest.(check bool) "round-trips" true (j = j'))

(* ------------------------------------------------------------------ *)
(* Checkpoints                                                         *)
(* ------------------------------------------------------------------ *)

let test_checkpoint_roundtrip () =
  with_temp_dir @@ fun dir ->
  let j = job "circuit_a" "dual" "off" 1 in
  Ckpt.write ~dir (done_checkpoint j);
  match Ckpt.load (Ckpt.path ~dir j) with
  | Error e -> Alcotest.fail e
  | Ok cp ->
    Alcotest.(check int) "schema version" Ckpt.schema_version cp.Ckpt.cp_version;
    Alcotest.(check bool) "status done" true (cp.Ckpt.cp_status = Ckpt.Done);
    Alcotest.(check int) "attempt" 1 cp.Ckpt.cp_attempt;
    (match cp.Ckpt.cp_workload with
    | None -> Alcotest.fail "done checkpoint lost its workload"
    | Some w ->
      Alcotest.(check string) "workload name" (Job.name j) w.Snapshot.w_name;
      Alcotest.(check (float 1e-9)) "qor exact" 12.5
        (List.assoc "area_um2" w.Snapshot.w_qor))

let test_checkpoint_failed_roundtrip () =
  with_temp_dir @@ fun dir ->
  let j = job "circuit_a" "dual" "off" 2 in
  Ckpt.write ~dir
    {
      Ckpt.cp_version = Ckpt.schema_version;
      cp_job = j;
      cp_status = Ckpt.Failed "exit 1 (flow aborted)";
      cp_attempt = 3;
      cp_time = 2000.0;
      cp_duration_s = 0.25;
      cp_prof = [];
      cp_workload = None;
    };
  match Ckpt.load (Ckpt.path ~dir j) with
  | Error e -> Alcotest.fail e
  | Ok cp -> (
    match cp.Ckpt.cp_status with
    | Ckpt.Failed e ->
      Alcotest.(check string) "error preserved" "exit 1 (flow aborted)" e;
      Alcotest.(check int) "attempts preserved" 3 cp.Ckpt.cp_attempt
    | Ckpt.Done -> Alcotest.fail "failed checkpoint loaded as done")

(* The crash-tolerance core: a checkpoint truncated mid-record (the
   write-path rename makes this near-impossible, but disks lie) must be
   counted unreadable and treated as "job not done" — never crash the
   scan, never double-count once the job is re-run. *)
let test_checkpoint_truncation_treated_missing () =
  with_temp_dir @@ fun dir ->
  let j1 = job "circuit_a" "dual" "off" 1 in
  let j2 = job "circuit_a" "improved" "off" 1 in
  Ckpt.write ~dir (done_checkpoint j1);
  Ckpt.write ~dir (done_checkpoint j2);
  (* truncate j2's checkpoint mid-record *)
  let p2 = Ckpt.path ~dir j2 in
  let full = In_channel.with_open_bin p2 In_channel.input_all in
  Out_channel.with_open_bin p2 (fun oc ->
      Out_channel.output_string oc (String.sub full 0 (String.length full / 2)));
  (match Ckpt.scan dir with
  | Error e -> Alcotest.fail e
  | Ok { Ckpt.sc_checkpoints; sc_unreadable } ->
    Alcotest.(check int) "torn file counted" 1 sc_unreadable;
    Alcotest.(check (list string)) "only the intact job is done"
      [ Job.id j1 ]
      (List.map fst sc_checkpoints));
  (* re-running the job (as resume would) restores full coverage with
     exactly one workload per job — no double count *)
  Ckpt.write ~dir (done_checkpoint ~attempt:2 j2);
  match Ckpt.scan dir with
  | Error e -> Alcotest.fail e
  | Ok { Ckpt.sc_checkpoints; sc_unreadable } ->
    Alcotest.(check int) "no torn files left" 0 sc_unreadable;
    Alcotest.(check int) "one checkpoint per job" 2 (List.length sc_checkpoints)

let test_checkpoint_mislabeled_ignored () =
  with_temp_dir @@ fun dir ->
  let j = job "circuit_a" "dual" "off" 1 in
  Ckpt.write ~dir (done_checkpoint j);
  (* copy it under another job's filename: embedded id disagrees *)
  let imposter = Filename.concat dir ("circuit_b~dual~off~s1" ^ Ckpt.suffix) in
  let body = In_channel.with_open_bin (Ckpt.path ~dir j) In_channel.input_all in
  Out_channel.with_open_bin imposter (fun oc -> Out_channel.output_string oc body);
  match Ckpt.scan dir with
  | Error e -> Alcotest.fail e
  | Ok { Ckpt.sc_checkpoints; sc_unreadable } ->
    Alcotest.(check int) "imposter counted unreadable" 1 sc_unreadable;
    Alcotest.(check (list string)) "only the honest checkpoint survives"
      [ Job.id j ]
      (List.map fst sc_checkpoints)

let test_manifest_roundtrip () =
  with_temp_dir @@ fun dir ->
  let m =
    Manifest.make ~tag:"t" ~circuits:[ "circuit_a" ]
      ~techniques:[ "dual"; "improved" ] ~guards:[ "off" ] ~seeds:[ 1; 2 ]
  in
  Manifest.write dir m;
  match Manifest.load dir with
  | Error e -> Alcotest.fail e
  | Ok m' ->
    Alcotest.(check bool) "round-trips" true (m = m');
    Alcotest.(check int) "matrix from manifest" 4 (List.length (Manifest.jobs m'))

(* ------------------------------------------------------------------ *)
(* Supervisor (real OS processes, /bin/sh workers)                     *)
(* ------------------------------------------------------------------ *)

let fast_cfg =
  {
    Sup.default_config with
    Sup.sv_jobs = 2;
    Sup.sv_timeout_s = 10.;
    Sup.sv_max_attempts = 3;
    Sup.sv_retry_base_ms = 1.;
    Sup.sv_retry_cap_ms = 5.;
  }

let marker dir id = Filename.concat dir (id ^ ".marker")

let verify_marker dir id =
  if Sys.file_exists (marker dir id) then Ok () else Error "marker missing"

let sh script = [| "/bin/sh"; "-c"; script |]

let test_supervisor_all_complete () =
  with_temp_dir @@ fun dir ->
  let ids = [ "j1"; "j2"; "j3"; "j4"; "j5" ] in
  let summary =
    Sup.run fast_cfg
      ~command:(fun ~id ~attempt:_ -> sh (Printf.sprintf "touch %s" (marker dir id)))
      ~verify:(verify_marker dir) ids
  in
  Alcotest.(check int) "no retries" 0 summary.Sup.sm_retries;
  Alcotest.(check (list string)) "all jobs completed, input order" ids
    (List.map fst summary.Sup.sm_outcomes);
  List.iter
    (fun (_, o) ->
      Alcotest.(check bool) "first attempt" true (o = Sup.Completed { attempts = 1 }))
    summary.Sup.sm_outcomes

let test_supervisor_retry_then_complete () =
  with_temp_dir @@ fun dir ->
  (* fails on attempts 1 and 2, succeeds on 3: retry/backoff must carry
     it to completion within the attempt budget *)
  let summary =
    Sup.run fast_cfg
      ~command:(fun ~id ~attempt ->
        if attempt >= 3 then sh (Printf.sprintf "touch %s" (marker dir id))
        else sh "exit 1")
      ~verify:(verify_marker dir) [ "flaky" ]
  in
  Alcotest.(check int) "two retries" 2 summary.Sup.sm_retries;
  Alcotest.(check bool) "completed on the third attempt" true
    (List.assoc "flaky" summary.Sup.sm_outcomes = Sup.Completed { attempts = 3 })

let test_supervisor_quarantine () =
  with_temp_dir @@ fun dir ->
  let summary =
    Sup.run fast_cfg
      ~command:(fun ~id:_ ~attempt:_ -> sh "exit 7")
      ~verify:(verify_marker dir) [ "doomed"; "fine" ]
  in
  (match List.assoc "doomed" summary.Sup.sm_outcomes with
  | Sup.Quarantined { attempts; last_error } ->
    Alcotest.(check int) "attempt budget spent" 3 attempts;
    Alcotest.(check bool) "exit code in the error" true
      (String.length last_error > 0)
  | Sup.Completed _ -> Alcotest.fail "persistent failure was not quarantined");
  Alcotest.(check int) "both quarantined (campaign still finished)" 2
    (List.length (Sup.quarantined summary))

(* Clean exit 0 without the durable result is still a failure: the
   verify predicate decides, not the exit status. *)
let test_supervisor_verify_rejects_clean_exit () =
  with_temp_dir @@ fun dir ->
  let summary =
    Sup.run
      { fast_cfg with Sup.sv_max_attempts = 2 }
      ~command:(fun ~id:_ ~attempt:_ -> sh "exit 0")
      ~verify:(verify_marker dir) [ "liar" ]
  in
  match List.assoc "liar" summary.Sup.sm_outcomes with
  | Sup.Quarantined { attempts; last_error } ->
    Alcotest.(check int) "retried before quarantine" 2 attempts;
    Alcotest.(check bool) "verify's reason surfaces" true
      (String.length last_error > 0 && String.ends_with ~suffix:")" last_error)
  | Sup.Completed _ -> Alcotest.fail "clean exit must not mask a missing result"

(* And the converse: a worker that dies by signal after producing its
   result has still completed the job — kills after the checkpoint
   rename are absorbed, not re-run. *)
let test_supervisor_verify_accepts_dirty_exit () =
  with_temp_dir @@ fun dir ->
  let summary =
    Sup.run fast_cfg
      ~command:(fun ~id ~attempt:_ ->
        sh (Printf.sprintf "touch %s; kill -9 $$" (marker dir id)))
      ~verify:(verify_marker dir) [ "martyr" ]
  in
  Alcotest.(check bool) "durable result decides" true
    (List.assoc "martyr" summary.Sup.sm_outcomes = Sup.Completed { attempts = 1 });
  Alcotest.(check int) "no retry burned" 0 summary.Sup.sm_retries

let test_supervisor_timeout () =
  with_temp_dir @@ fun dir ->
  let summary =
    Sup.run
      { fast_cfg with Sup.sv_timeout_s = 0.1; Sup.sv_max_attempts = 1 }
      ~command:(fun ~id:_ ~attempt:_ -> sh "sleep 30")
      ~verify:(verify_marker dir) [ "stuck" ]
  in
  Alcotest.(check int) "timeout counted" 1 summary.Sup.sm_timeouts;
  match List.assoc "stuck" summary.Sup.sm_outcomes with
  | Sup.Quarantined { last_error; _ } ->
    Alcotest.(check bool) "cause named in the error" true
      (String.length last_error >= 7 && String.sub last_error 0 7 = "timeout")
  | Sup.Completed _ -> Alcotest.fail "a hung shard must not complete"

let test_supervisor_chaos_kills_deterministically () =
  with_temp_dir @@ fun dir ->
  let cfg =
    {
      fast_cfg with
      Sup.sv_chaos = 1.0;
      Sup.sv_chaos_delay_ms = 5.;
      Sup.sv_max_attempts = 2;
      Sup.sv_seed = 42;
    }
  in
  let run () =
    Sup.run cfg
      ~command:(fun ~id:_ ~attempt:_ -> sh "sleep 30")
      ~verify:(verify_marker dir) [ "victim" ]
  in
  let s1 = run () in
  Alcotest.(check int) "every attempt chaos-killed" 2 s1.Sup.sm_chaos_kills;
  (match List.assoc "victim" s1.Sup.sm_outcomes with
  | Sup.Quarantined { last_error; _ } ->
    Alcotest.(check bool) "chaos kill named" true
      (String.length last_error >= 10 && String.sub last_error 0 10 = "chaos-kill")
  | Sup.Completed _ -> Alcotest.fail "p=1.0 chaos must kill every attempt");
  (* same config, same schedule: the summary is reproducible *)
  let s2 = run () in
  Alcotest.(check bool) "kill schedule is a function of the config" true
    (s1.Sup.sm_outcomes = s2.Sup.sm_outcomes)

(* ------------------------------------------------------------------ *)
(* Merge determinism                                                   *)
(* ------------------------------------------------------------------ *)

let write_campaign dir jobs_done =
  Manifest.write dir
    (Manifest.make ~tag:"m" ~circuits:[ "circuit_a"; "circuit_b" ]
       ~techniques:[ "dual" ] ~guards:[ "off" ] ~seeds:[ 1 ]);
  List.iter (fun j -> Ckpt.write ~dir (done_checkpoint j)) jobs_done

let test_merge_complete_and_byte_deterministic () =
  let ja = job "circuit_a" "dual" "off" 1 in
  let jb = job "circuit_b" "dual" "off" 1 in
  let snap order =
    with_temp_dir @@ fun dir ->
    write_campaign dir order;
    match Merge.of_dir dir with
    | Error e -> Alcotest.fail e
    | Ok m ->
      Alcotest.(check bool) "complete" true (Merge.complete m);
      Snapshot.to_json m.Merge.mg_snapshot
  in
  (* write order must not leak into the merged bytes *)
  Alcotest.(check string) "byte-identical under write reordering"
    (snap [ ja; jb ]) (snap [ jb; ja ])

let test_merge_strips_wallclock () =
  with_temp_dir @@ fun dir ->
  write_campaign dir
    [ job "circuit_a" "dual" "off" 1; job "circuit_b" "dual" "off" 1 ];
  match Merge.of_dir dir with
  | Error e -> Alcotest.fail e
  | Ok m ->
    List.iter
      (fun (w : Snapshot.workload) ->
        Alcotest.(check int)
          (w.Snapshot.w_name ^ ": stage_ms stripped")
          0
          (List.length w.Snapshot.w_stage_ms))
      m.Merge.mg_snapshot.Snapshot.s_workloads

let test_merge_partial_coverage () =
  with_temp_dir @@ fun dir ->
  let ja = job "circuit_a" "dual" "off" 1 in
  let jb = job "circuit_b" "dual" "off" 1 in
  write_campaign dir [ ja ];
  Ckpt.write ~dir
    {
      Ckpt.cp_version = Ckpt.schema_version;
      cp_job = jb;
      cp_status = Ckpt.Failed "exit 1 (boom)";
      cp_attempt = 3;
      cp_time = 1.0;
      cp_duration_s = 0.;
      cp_prof = [];
      cp_workload = None;
    };
  (* a checkpoint outside the matrix must be ignored, not merged *)
  Ckpt.write ~dir (done_checkpoint (job "circuit_a" "improved" "off" 1));
  match Merge.of_dir dir with
  | Error e -> Alcotest.fail e
  | Ok m ->
    Alcotest.(check bool) "not complete" false (Merge.complete m);
    Alcotest.(check int) "done" 1 m.Merge.mg_done;
    Alcotest.(check int) "failed" 1 m.Merge.mg_failed;
    Alcotest.(check int) "missing" 0 m.Merge.mg_missing;
    Alcotest.(check int) "stray checkpoint not merged" 1
      (List.length m.Merge.mg_snapshot.Snapshot.s_workloads);
    let states =
      List.map (fun (js : Merge.job_state) -> js.Merge.js_state) m.Merge.mg_states
    in
    Alcotest.(check bool) "failure surfaces in the states" true
      (List.exists (function Merge.Sfailed _ -> true | _ -> false) states)

(* ------------------------------------------------------------------ *)
(* Checkpoint forward compatibility                                    *)
(* ------------------------------------------------------------------ *)

(* A checkpoint written before the duration/prof envelope fields existed
   (same schema version, fewer fields) must load with neutral defaults —
   campaign directories survive binary upgrades mid-campaign. *)
let test_checkpoint_old_format_defaults () =
  with_temp_dir @@ fun dir ->
  let j = job "circuit_a" "dual" "off" 1 in
  let old_json =
    Obs_json.obj
      [
        ("schema_version", string_of_int Ckpt.schema_version);
        ("job", Job.to_json j);
        ("status", Obs_json.str "done");
        ("attempt", "1");
        ("time", "1000");
        ("workload", Snapshot.workload_json (sample_workload (Job.name j)));
      ]
  in
  Out_channel.with_open_bin (Ckpt.path ~dir j) (fun oc ->
      Out_channel.output_string oc (old_json ^ "\n"));
  match Ckpt.load (Ckpt.path ~dir j) with
  | Error e -> Alcotest.fail e
  | Ok cp ->
    Alcotest.(check (float 0.)) "duration defaults to 0" 0. cp.Ckpt.cp_duration_s;
    Alcotest.(check int) "prof defaults to empty" 0 (List.length cp.Ckpt.cp_prof)

let test_checkpoint_envelope_roundtrip () =
  with_temp_dir @@ fun dir ->
  let j = job "circuit_a" "improved" "off" 4 in
  Ckpt.write ~dir
    (done_checkpoint ~duration:1.75 ~prof:[ ("replace", sample_stats) ] j);
  match Ckpt.load (Ckpt.path ~dir j) with
  | Error e -> Alcotest.fail e
  | Ok cp ->
    Alcotest.(check (float 1e-12)) "duration round-trips" 1.75 cp.Ckpt.cp_duration_s;
    (match cp.Ckpt.cp_prof with
    | [ (stage, st) ] ->
      Alcotest.(check string) "prof stage" "replace" stage;
      Alcotest.(check (float 1e-9)) "minor words" 1000. st.Prof.minor_words;
      Alcotest.(check int) "top heap" 4096 st.Prof.top_heap_words
    | _ -> Alcotest.fail "prof lost in the round-trip")

(* ------------------------------------------------------------------ *)
(* Telemetry sidecars                                                  *)
(* ------------------------------------------------------------------ *)

let empty_metrics = { Metrics.p_counters = []; p_gauges = []; p_hists = [] }

let sample_event ?(args = []) ?(tid = Trace.main_tid) name ts dur =
  {
    Trace.ev_name = name;
    ev_ts_us = ts;
    ev_dur_us = dur;
    ev_depth = 0;
    ev_tid = tid;
    ev_args = args;
  }

let sample_sidecar ?(attempt = 1) ?(epoch = Trace.epoch_unix_s ()) ?(events = [])
    job =
  {
    Telemetry.tl_version = Telemetry.schema_version;
    tl_job = job;
    tl_attempt = attempt;
    tl_epoch_unix_s = epoch;
    tl_events = events;
    tl_metrics = empty_metrics;
    tl_prof = [];
  }

let test_telemetry_roundtrip () =
  with_temp_dir @@ fun dir ->
  let t =
    {
      (sample_sidecar ~attempt:2
         ~events:
           [ sample_event ~args:[ ("stage", "route") ] "high-Vth replacement" 100. 50. ]
         "circuit_a~dual~off~s1")
      with
      Telemetry.tl_metrics =
        {
          Metrics.p_counters = [ ("flow.runs", 3) ];
          p_gauges = [ ("campaign.pending", 2.) ];
          p_hists = [];
        };
      tl_prof = [ ("replace", sample_stats) ];
    }
  in
  Telemetry.write ~dir t;
  match Telemetry.load (Telemetry.path ~dir "circuit_a~dual~off~s1") with
  | Error e -> Alcotest.fail e
  | Ok t' ->
    Alcotest.(check string) "job" t.Telemetry.tl_job t'.Telemetry.tl_job;
    Alcotest.(check int) "attempt" 2 t'.Telemetry.tl_attempt;
    (match t'.Telemetry.tl_events with
    | [ ev ] ->
      Alcotest.(check string) "span name" "high-Vth replacement" ev.Trace.ev_name;
      Alcotest.(check (float 1e-6)) "ts" 100. ev.Trace.ev_ts_us;
      Alcotest.(check string) "span args" "route"
        (List.assoc "stage" ev.Trace.ev_args)
    | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs));
    Alcotest.(check int) "counters survive" 3
      (List.assoc "flow.runs" t'.Telemetry.tl_metrics.Metrics.p_counters);
    Alcotest.(check (float 1e-9)) "prof survives" 1000.
      (List.assoc "replace" t'.Telemetry.tl_prof).Prof.minor_words

(* Torn sidecars must be tolerated exactly like torn checkpoints: load
   as [Error], never raise — the supervisor just skips the overlay. *)
let test_telemetry_torn_tolerated () =
  with_temp_dir @@ fun dir ->
  let t =
    sample_sidecar ~events:[ sample_event "span" 0. 10. ] "circuit_a~dual~off~s1"
  in
  Telemetry.write ~dir t;
  let p = Telemetry.path ~dir "circuit_a~dual~off~s1" in
  let full = In_channel.with_open_bin p In_channel.input_all in
  Out_channel.with_open_bin p (fun oc ->
      Out_channel.output_string oc (String.sub full 0 (String.length full / 2)));
  (match Telemetry.load p with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated sidecar parsed as valid");
  match Telemetry.load (Telemetry.path ~dir "no~such~job~s1") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing sidecar parsed as valid"

(* The epoch shift: a sidecar whose writer started 2.5 s after the
   reader's epoch must land its spans 2.5e6 us later on the unified
   timeline, on the tid the absorber chose, with the attempt recorded in
   the span args. *)
let test_telemetry_epoch_shift_and_tid () =
  let t =
    sample_sidecar ~attempt:3
      ~epoch:(Trace.epoch_unix_s () +. 2.5)
      ~events:[ sample_event ~args:[ ("k", "v") ] "span" 100. 50. ]
      "j"
  in
  Trace.enable ();
  let (), evs =
    Fun.protect
      ~finally:(fun () -> Trace.disable ())
      (fun () -> Trace.collect (fun () -> Telemetry.absorb ~tid:7 t))
  in
  match evs with
  | [ ev ] ->
    Alcotest.(check (float 1.)) "ts shifted by the epoch delta" (100. +. 2.5e6)
      ev.Trace.ev_ts_us;
    Alcotest.(check int) "absorber's tid" 7 ev.Trace.ev_tid;
    Alcotest.(check string) "attempt stamped into args" "3"
      (List.assoc "attempt" ev.Trace.ev_args);
    Alcotest.(check string) "original args kept" "v"
      (List.assoc "k" ev.Trace.ev_args)
  | evs -> Alcotest.failf "expected 1 absorbed event, got %d" (List.length evs)

(* Under SMT_CLOCK every process reports the pinned epoch, so the shift
   collapses to zero and absorbed timestamps are reproducible. *)
let test_telemetry_smt_clock_pins_epoch () =
  Unix.putenv "SMT_CLOCK" "1234.5";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "SMT_CLOCK" "")
    (fun () ->
      Alcotest.(check (float 0.)) "epoch is the pinned clock" 1234.5
        (Trace.epoch_unix_s ());
      let t =
        sample_sidecar ~epoch:(Trace.epoch_unix_s ())
          ~events:[ sample_event "span" 100. 50. ]
          "j"
      in
      Trace.enable ();
      let (), evs =
        Fun.protect
          ~finally:(fun () -> Trace.disable ())
          (fun () -> Trace.collect (fun () -> Telemetry.absorb ~tid:2 t))
      in
      match evs with
      | [ ev ] ->
        Alcotest.(check (float 0.)) "zero shift under the pinned clock" 100.
          ev.Trace.ev_ts_us
      | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs))

(* Retries of one job land on one tid: the slot table is a function of
   the manifest, and every attempt's sidecar absorbs onto [2 + slot]. *)
let test_telemetry_tid_stable_across_retries () =
  let man =
    Manifest.make ~tag:"t" ~circuits:[ "a"; "b" ] ~techniques:[ "dual" ]
      ~guards:[ "off" ] ~seeds:[ 1 ]
  in
  let slots = Manifest.slots man in
  Alcotest.(check (list (pair string int)))
    "slots follow the canonical matrix"
    [ ("a~dual~off~s1", 0); ("b~dual~off~s1", 1) ]
    slots;
  let tid_of id = 2 + List.assoc id slots in
  let absorb_attempt attempt =
    let t =
      sample_sidecar ~attempt
        ~events:[ sample_event "span" (float_of_int attempt) 1. ]
        "b~dual~off~s1"
    in
    Trace.enable ();
    Fun.protect
      ~finally:(fun () -> Trace.disable ())
      (fun () ->
        snd (Trace.collect (fun () -> Telemetry.absorb ~tid:(tid_of "b~dual~off~s1") t)))
  in
  let evs = absorb_attempt 1 @ absorb_attempt 2 in
  Alcotest.(check int) "both attempts absorbed" 2 (List.length evs);
  List.iter
    (fun ev -> Alcotest.(check int) "same tid on every attempt" 3 ev.Trace.ev_tid)
    evs

(* ------------------------------------------------------------------ *)
(* Heartbeats and stall detection                                      *)
(* ------------------------------------------------------------------ *)

let test_heartbeat_roundtrip () =
  with_temp_dir @@ fun dir ->
  let p = Heartbeat.path ~dir "j1" in
  Heartbeat.write p { Heartbeat.hb_stage = "routing"; hb_stages_done = 5; hb_beat = 17 };
  match Heartbeat.read p with
  | Error e -> Alcotest.fail e
  | Ok hb ->
    Alcotest.(check string) "stage" "routing" hb.Heartbeat.hb_stage;
    Alcotest.(check int) "stages done" 5 hb.Heartbeat.hb_stages_done;
    Alcotest.(check int) "beat" 17 hb.Heartbeat.hb_beat

let test_heartbeat_beater_advances () =
  with_temp_dir @@ fun dir ->
  Unix.putenv "SMT_HB_INTERVAL_MS" "10";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "SMT_HB_INTERVAL_MS" "")
    (fun () ->
      let p = Heartbeat.path ~dir "j1" in
      let b = Heartbeat.start ~path:p in
      Heartbeat.set_stage b "placement";
      Heartbeat.set_stage b "routing";
      Unix.sleepf 0.08;
      Heartbeat.stop b;
      match Heartbeat.read p with
      | Error e -> Alcotest.fail e
      | Ok hb ->
        Alcotest.(check string) "latest stage wins" "routing" hb.Heartbeat.hb_stage;
        Alcotest.(check int) "both stage closes counted" 2
          hb.Heartbeat.hb_stages_done;
        Alcotest.(check bool) "counter advanced while running" true
          (hb.Heartbeat.hb_beat > 1))

(* The stall detector: a wedged worker that never beats its heartbeat is
   killed after --stall-timeout — far inside the wall-clock timeout —
   and the retry completes the job. *)
let test_supervisor_stall_detection () =
  with_temp_dir @@ fun dir ->
  let t0 = Unix.gettimeofday () in
  let summary =
    Sup.run
      {
        fast_cfg with
        Sup.sv_timeout_s = 30.;
        Sup.sv_stall_timeout_s = 0.15;
        Sup.sv_max_attempts = 2;
      }
      ~command:(fun ~id ~attempt ->
        if attempt >= 2 then sh (Printf.sprintf "touch %s" (marker dir id))
        else sh "sleep 30")
      ~verify:(verify_marker dir)
      ~hb_path:(fun id -> Heartbeat.path ~dir id)
      [ "wedged" ]
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "stall kill beat the 30s wall-clock timeout" true
    (elapsed < 10.);
  Alcotest.(check bool) "at least one stall counted" true (summary.Sup.sm_stalls >= 1);
  Alcotest.(check int) "no wall-clock timeout burned" 0 summary.Sup.sm_timeouts;
  Alcotest.(check bool) "retry completed the job" true
    (List.assoc "wedged" summary.Sup.sm_outcomes = Sup.Completed { attempts = 2 })

(* A worker that IS beating must not be killed as stalled, however slow
   its stages are. *)
let test_supervisor_slow_but_alive_not_stalled () =
  with_temp_dir @@ fun dir ->
  let hb = Heartbeat.path ~dir in
  let summary =
    Sup.run
      {
        fast_cfg with
        Sup.sv_stall_timeout_s = 0.3;
        Sup.sv_max_attempts = 1;
      }
      ~command:(fun ~id ~attempt:_ ->
        (* beat every 50 ms for ~0.6 s, then finish: alive throughout.
           Temp + mv like the real beater, so the poller never reads a
           torn line. *)
        sh
          (Printf.sprintf
             "p=%s; i=0; while [ $i -lt 12 ]; do echo \
              '{\"stage\":\"s\",\"stages_done\":1,\"beat\":'$i'}' > $p.t; \
              mv $p.t $p; i=$((i+1)); sleep 0.05; done; touch %s"
             (Filename.quote (hb id)) (marker dir id)))
      ~verify:(verify_marker dir) ~hb_path:hb [ "slowpoke" ]
  in
  Alcotest.(check int) "no stalls" 0 summary.Sup.sm_stalls;
  Alcotest.(check bool) "completed" true
    (List.assoc "slowpoke" summary.Sup.sm_outcomes = Sup.Completed { attempts = 1 })

(* ------------------------------------------------------------------ *)
(* Merge: the telemetry envelope                                       *)
(* ------------------------------------------------------------------ *)

(* The envelope fields feed the ledger view but must never reach the
   byte-compared snapshot: a campaign run with telemetry/profiling on
   merges to exactly the bytes of one run with it off. *)
let test_merge_snapshot_ignores_envelope () =
  let ja = job "circuit_a" "dual" "off" 1 in
  let jb = job "circuit_b" "dual" "off" 1 in
  let snap ~duration ~prof =
    with_temp_dir @@ fun dir ->
    Manifest.write dir
      (Manifest.make ~tag:"m" ~circuits:[ "circuit_a"; "circuit_b" ]
         ~techniques:[ "dual" ] ~guards:[ "off" ] ~seeds:[ 1 ]);
    List.iter
      (fun j -> Ckpt.write ~dir (done_checkpoint ~duration ~prof j))
      [ ja; jb ];
    match Merge.of_dir dir with
    | Error e -> Alcotest.fail e
    | Ok m -> Snapshot.to_json m.Merge.mg_snapshot
  in
  Alcotest.(check string) "byte-identical with and without the envelope"
    (snap ~duration:0. ~prof:[])
    (snap ~duration:3.25 ~prof:[ ("replace", sample_stats) ])

let test_merge_workloads_carry_prof () =
  with_temp_dir @@ fun dir ->
  Manifest.write dir
    (Manifest.make ~tag:"m" ~circuits:[ "circuit_a" ] ~techniques:[ "dual" ]
       ~guards:[ "off" ] ~seeds:[ 1 ]);
  let j = job "circuit_a" "dual" "off" 1 in
  Ckpt.write ~dir
    (done_checkpoint ~duration:1.5 ~prof:[ ("replace", sample_stats) ] j);
  match Merge.of_dir dir with
  | Error e -> Alcotest.fail e
  | Ok m -> (
    (match m.Merge.mg_states with
    | [ js ] ->
      Alcotest.(check (float 1e-12)) "duration surfaces in the state" 1.5
        js.Merge.js_duration_s
    | _ -> Alcotest.fail "expected one job state");
    match Merge.workloads m with
    | [ lw ] ->
      Alcotest.(check string) "named after the job" (Job.name j)
        lw.Smt_obs.Ledger.lw_workload.Snapshot.w_name;
      Alcotest.(check bool) "stage wall-clock kept (unlike the snapshot)" true
        (List.length lw.Smt_obs.Ledger.lw_workload.Snapshot.w_stage_ms > 0);
      Alcotest.(check (float 1e-9)) "per-stage GC attribution threaded through"
        1000.
        (List.assoc "replace" lw.Smt_obs.Ledger.lw_prof).Prof.minor_words
    | ws -> Alcotest.failf "expected 1 ledger workload, got %d" (List.length ws))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "campaign"
    [
      ( "job",
        [
          Alcotest.test_case "id and name" `Quick test_job_id_and_name;
          Alcotest.test_case "matrix order" `Quick test_job_matrix_order;
          Alcotest.test_case "json round-trip" `Quick test_job_json_roundtrip;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "done round-trip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "failed round-trip" `Quick
            test_checkpoint_failed_roundtrip;
          Alcotest.test_case "truncation treated as missing" `Quick
            test_checkpoint_truncation_treated_missing;
          Alcotest.test_case "mislabeled file ignored" `Quick
            test_checkpoint_mislabeled_ignored;
          Alcotest.test_case "manifest round-trip" `Quick test_manifest_roundtrip;
          Alcotest.test_case "pre-envelope format loads with defaults" `Quick
            test_checkpoint_old_format_defaults;
          Alcotest.test_case "duration and prof round-trip" `Quick
            test_checkpoint_envelope_roundtrip;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "sidecar round-trip" `Quick test_telemetry_roundtrip;
          Alcotest.test_case "torn sidecar tolerated" `Quick
            test_telemetry_torn_tolerated;
          Alcotest.test_case "epoch shift and tid on absorb" `Quick
            test_telemetry_epoch_shift_and_tid;
          Alcotest.test_case "SMT_CLOCK pins the epoch" `Quick
            test_telemetry_smt_clock_pins_epoch;
          Alcotest.test_case "tid stable across retries" `Quick
            test_telemetry_tid_stable_across_retries;
        ] );
      ( "heartbeat",
        [
          Alcotest.test_case "round-trip" `Quick test_heartbeat_roundtrip;
          Alcotest.test_case "beater advances" `Quick test_heartbeat_beater_advances;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "all jobs complete" `Quick test_supervisor_all_complete;
          Alcotest.test_case "retry with backoff" `Quick
            test_supervisor_retry_then_complete;
          Alcotest.test_case "quarantine after max attempts" `Quick
            test_supervisor_quarantine;
          Alcotest.test_case "verify rejects a clean exit" `Quick
            test_supervisor_verify_rejects_clean_exit;
          Alcotest.test_case "verify accepts a dirty exit" `Quick
            test_supervisor_verify_accepts_dirty_exit;
          Alcotest.test_case "timeout kills a hung shard" `Quick
            test_supervisor_timeout;
          Alcotest.test_case "chaos kills deterministically" `Quick
            test_supervisor_chaos_kills_deterministically;
          Alcotest.test_case "stall detection kills a wedged shard" `Quick
            test_supervisor_stall_detection;
          Alcotest.test_case "slow but beating shard survives" `Quick
            test_supervisor_slow_but_alive_not_stalled;
        ] );
      ( "merge",
        [
          Alcotest.test_case "byte-deterministic" `Quick
            test_merge_complete_and_byte_deterministic;
          Alcotest.test_case "wall-clock stripped" `Quick test_merge_strips_wallclock;
          Alcotest.test_case "partial coverage reported" `Quick
            test_merge_partial_coverage;
          Alcotest.test_case "snapshot ignores the envelope" `Quick
            test_merge_snapshot_ignores_envelope;
          Alcotest.test_case "ledger workloads carry prof" `Quick
            test_merge_workloads_carry_prof;
        ] );
    ]
