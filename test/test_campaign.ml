(* Tests for the crash-tolerant campaign runner: job identity, atomic
   checkpoints (including torn files), the process supervisor's retry /
   quarantine / timeout / chaos behaviour, and the byte-determinism of
   the merged snapshot.  The full CLI cycle — chaos run, resume,
   byte-compare against an uninterrupted run — lives in the dune e2e
   rule next to this file. *)

module Job = Smt_campaign.Job
module Ckpt = Smt_campaign.Checkpoint
module Manifest = Smt_campaign.Manifest
module Sup = Smt_campaign.Supervisor
module Merge = Smt_campaign.Merge
module Snapshot = Smt_obs.Snapshot
module Obs_json = Smt_obs.Obs_json

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path

let with_temp_dir f =
  let path = Filename.temp_file "smt_campaign" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  Fun.protect ~finally:(fun () -> rm_rf path) (fun () -> f path)

let job c t g s = { Job.jb_circuit = c; jb_technique = t; jb_guard = g; jb_seed = s }

let sample_workload name =
  Snapshot.workload ~name
    ~qor:[ ("area_um2", 12.5); ("standby_nw", 3.25) ]
    ~counters:[ ("sta.arrival_evals", 42) ]
    ~stage_ms:[ ("replace", 1.5) ]

let done_checkpoint ?(attempt = 1) j =
  {
    Ckpt.cp_version = Ckpt.schema_version;
    cp_job = j;
    cp_status = Ckpt.Done;
    cp_attempt = attempt;
    cp_time = 1000.0;
    cp_workload = Some (sample_workload (Job.name j));
  }

(* ------------------------------------------------------------------ *)
(* Job identity and matrix                                             *)
(* ------------------------------------------------------------------ *)

let test_job_id_and_name () =
  let j = job "circuit_a" "improved" "off" 3 in
  Alcotest.(check string) "filename-safe id" "circuit_a~improved~off~s3" (Job.id j);
  Alcotest.(check string) "workload name" "circuit_a/improved/off/s3" (Job.name j)

let test_job_matrix_order () =
  let m =
    Job.matrix ~circuits:[ "a"; "b" ] ~techniques:[ "dual"; "improved" ]
      ~guards:[ "off" ] ~seeds:[ 1; 2 ]
  in
  Alcotest.(check int) "cross product size" 8 (List.length m);
  Alcotest.(check string) "circuits outermost" "a~dual~off~s1" (Job.id (List.hd m));
  Alcotest.(check string) "seeds innermost" "a~dual~off~s2"
    (Job.id (List.nth m 1));
  let ids = List.map Job.id m in
  Alcotest.(check int) "ids injective" 8
    (List.length (List.sort_uniq compare ids))

let test_job_json_roundtrip () =
  let j = job "circuit_b" "conventional" "warn" 7 in
  match Obs_json.parse (Job.to_json j) with
  | Error e -> Alcotest.fail e
  | Ok doc -> (
    match Job.of_json doc with
    | Error e -> Alcotest.fail e
    | Ok j' -> Alcotest.(check bool) "round-trips" true (j = j'))

(* ------------------------------------------------------------------ *)
(* Checkpoints                                                         *)
(* ------------------------------------------------------------------ *)

let test_checkpoint_roundtrip () =
  with_temp_dir @@ fun dir ->
  let j = job "circuit_a" "dual" "off" 1 in
  Ckpt.write ~dir (done_checkpoint j);
  match Ckpt.load (Ckpt.path ~dir j) with
  | Error e -> Alcotest.fail e
  | Ok cp ->
    Alcotest.(check int) "schema version" Ckpt.schema_version cp.Ckpt.cp_version;
    Alcotest.(check bool) "status done" true (cp.Ckpt.cp_status = Ckpt.Done);
    Alcotest.(check int) "attempt" 1 cp.Ckpt.cp_attempt;
    (match cp.Ckpt.cp_workload with
    | None -> Alcotest.fail "done checkpoint lost its workload"
    | Some w ->
      Alcotest.(check string) "workload name" (Job.name j) w.Snapshot.w_name;
      Alcotest.(check (float 1e-9)) "qor exact" 12.5
        (List.assoc "area_um2" w.Snapshot.w_qor))

let test_checkpoint_failed_roundtrip () =
  with_temp_dir @@ fun dir ->
  let j = job "circuit_a" "dual" "off" 2 in
  Ckpt.write ~dir
    {
      Ckpt.cp_version = Ckpt.schema_version;
      cp_job = j;
      cp_status = Ckpt.Failed "exit 1 (flow aborted)";
      cp_attempt = 3;
      cp_time = 2000.0;
      cp_workload = None;
    };
  match Ckpt.load (Ckpt.path ~dir j) with
  | Error e -> Alcotest.fail e
  | Ok cp -> (
    match cp.Ckpt.cp_status with
    | Ckpt.Failed e ->
      Alcotest.(check string) "error preserved" "exit 1 (flow aborted)" e;
      Alcotest.(check int) "attempts preserved" 3 cp.Ckpt.cp_attempt
    | Ckpt.Done -> Alcotest.fail "failed checkpoint loaded as done")

(* The crash-tolerance core: a checkpoint truncated mid-record (the
   write-path rename makes this near-impossible, but disks lie) must be
   counted unreadable and treated as "job not done" — never crash the
   scan, never double-count once the job is re-run. *)
let test_checkpoint_truncation_treated_missing () =
  with_temp_dir @@ fun dir ->
  let j1 = job "circuit_a" "dual" "off" 1 in
  let j2 = job "circuit_a" "improved" "off" 1 in
  Ckpt.write ~dir (done_checkpoint j1);
  Ckpt.write ~dir (done_checkpoint j2);
  (* truncate j2's checkpoint mid-record *)
  let p2 = Ckpt.path ~dir j2 in
  let full = In_channel.with_open_bin p2 In_channel.input_all in
  Out_channel.with_open_bin p2 (fun oc ->
      Out_channel.output_string oc (String.sub full 0 (String.length full / 2)));
  (match Ckpt.scan dir with
  | Error e -> Alcotest.fail e
  | Ok { Ckpt.sc_checkpoints; sc_unreadable } ->
    Alcotest.(check int) "torn file counted" 1 sc_unreadable;
    Alcotest.(check (list string)) "only the intact job is done"
      [ Job.id j1 ]
      (List.map fst sc_checkpoints));
  (* re-running the job (as resume would) restores full coverage with
     exactly one workload per job — no double count *)
  Ckpt.write ~dir (done_checkpoint ~attempt:2 j2);
  match Ckpt.scan dir with
  | Error e -> Alcotest.fail e
  | Ok { Ckpt.sc_checkpoints; sc_unreadable } ->
    Alcotest.(check int) "no torn files left" 0 sc_unreadable;
    Alcotest.(check int) "one checkpoint per job" 2 (List.length sc_checkpoints)

let test_checkpoint_mislabeled_ignored () =
  with_temp_dir @@ fun dir ->
  let j = job "circuit_a" "dual" "off" 1 in
  Ckpt.write ~dir (done_checkpoint j);
  (* copy it under another job's filename: embedded id disagrees *)
  let imposter = Filename.concat dir ("circuit_b~dual~off~s1" ^ Ckpt.suffix) in
  let body = In_channel.with_open_bin (Ckpt.path ~dir j) In_channel.input_all in
  Out_channel.with_open_bin imposter (fun oc -> Out_channel.output_string oc body);
  match Ckpt.scan dir with
  | Error e -> Alcotest.fail e
  | Ok { Ckpt.sc_checkpoints; sc_unreadable } ->
    Alcotest.(check int) "imposter counted unreadable" 1 sc_unreadable;
    Alcotest.(check (list string)) "only the honest checkpoint survives"
      [ Job.id j ]
      (List.map fst sc_checkpoints)

let test_manifest_roundtrip () =
  with_temp_dir @@ fun dir ->
  let m =
    Manifest.make ~tag:"t" ~circuits:[ "circuit_a" ]
      ~techniques:[ "dual"; "improved" ] ~guards:[ "off" ] ~seeds:[ 1; 2 ]
  in
  Manifest.write dir m;
  match Manifest.load dir with
  | Error e -> Alcotest.fail e
  | Ok m' ->
    Alcotest.(check bool) "round-trips" true (m = m');
    Alcotest.(check int) "matrix from manifest" 4 (List.length (Manifest.jobs m'))

(* ------------------------------------------------------------------ *)
(* Supervisor (real OS processes, /bin/sh workers)                     *)
(* ------------------------------------------------------------------ *)

let fast_cfg =
  {
    Sup.default_config with
    Sup.sv_jobs = 2;
    Sup.sv_timeout_s = 10.;
    Sup.sv_max_attempts = 3;
    Sup.sv_retry_base_ms = 1.;
    Sup.sv_retry_cap_ms = 5.;
  }

let marker dir id = Filename.concat dir (id ^ ".marker")

let verify_marker dir id =
  if Sys.file_exists (marker dir id) then Ok () else Error "marker missing"

let sh script = [| "/bin/sh"; "-c"; script |]

let test_supervisor_all_complete () =
  with_temp_dir @@ fun dir ->
  let ids = [ "j1"; "j2"; "j3"; "j4"; "j5" ] in
  let summary =
    Sup.run fast_cfg
      ~command:(fun ~id ~attempt:_ -> sh (Printf.sprintf "touch %s" (marker dir id)))
      ~verify:(verify_marker dir) ids
  in
  Alcotest.(check int) "no retries" 0 summary.Sup.sm_retries;
  Alcotest.(check (list string)) "all jobs completed, input order" ids
    (List.map fst summary.Sup.sm_outcomes);
  List.iter
    (fun (_, o) ->
      Alcotest.(check bool) "first attempt" true (o = Sup.Completed { attempts = 1 }))
    summary.Sup.sm_outcomes

let test_supervisor_retry_then_complete () =
  with_temp_dir @@ fun dir ->
  (* fails on attempts 1 and 2, succeeds on 3: retry/backoff must carry
     it to completion within the attempt budget *)
  let summary =
    Sup.run fast_cfg
      ~command:(fun ~id ~attempt ->
        if attempt >= 3 then sh (Printf.sprintf "touch %s" (marker dir id))
        else sh "exit 1")
      ~verify:(verify_marker dir) [ "flaky" ]
  in
  Alcotest.(check int) "two retries" 2 summary.Sup.sm_retries;
  Alcotest.(check bool) "completed on the third attempt" true
    (List.assoc "flaky" summary.Sup.sm_outcomes = Sup.Completed { attempts = 3 })

let test_supervisor_quarantine () =
  with_temp_dir @@ fun dir ->
  let summary =
    Sup.run fast_cfg
      ~command:(fun ~id:_ ~attempt:_ -> sh "exit 7")
      ~verify:(verify_marker dir) [ "doomed"; "fine" ]
  in
  (match List.assoc "doomed" summary.Sup.sm_outcomes with
  | Sup.Quarantined { attempts; last_error } ->
    Alcotest.(check int) "attempt budget spent" 3 attempts;
    Alcotest.(check bool) "exit code in the error" true
      (String.length last_error > 0)
  | Sup.Completed _ -> Alcotest.fail "persistent failure was not quarantined");
  Alcotest.(check int) "both quarantined (campaign still finished)" 2
    (List.length (Sup.quarantined summary))

(* Clean exit 0 without the durable result is still a failure: the
   verify predicate decides, not the exit status. *)
let test_supervisor_verify_rejects_clean_exit () =
  with_temp_dir @@ fun dir ->
  let summary =
    Sup.run
      { fast_cfg with Sup.sv_max_attempts = 2 }
      ~command:(fun ~id:_ ~attempt:_ -> sh "exit 0")
      ~verify:(verify_marker dir) [ "liar" ]
  in
  match List.assoc "liar" summary.Sup.sm_outcomes with
  | Sup.Quarantined { attempts; last_error } ->
    Alcotest.(check int) "retried before quarantine" 2 attempts;
    Alcotest.(check bool) "verify's reason surfaces" true
      (String.length last_error > 0 && String.ends_with ~suffix:")" last_error)
  | Sup.Completed _ -> Alcotest.fail "clean exit must not mask a missing result"

(* And the converse: a worker that dies by signal after producing its
   result has still completed the job — kills after the checkpoint
   rename are absorbed, not re-run. *)
let test_supervisor_verify_accepts_dirty_exit () =
  with_temp_dir @@ fun dir ->
  let summary =
    Sup.run fast_cfg
      ~command:(fun ~id ~attempt:_ ->
        sh (Printf.sprintf "touch %s; kill -9 $$" (marker dir id)))
      ~verify:(verify_marker dir) [ "martyr" ]
  in
  Alcotest.(check bool) "durable result decides" true
    (List.assoc "martyr" summary.Sup.sm_outcomes = Sup.Completed { attempts = 1 });
  Alcotest.(check int) "no retry burned" 0 summary.Sup.sm_retries

let test_supervisor_timeout () =
  with_temp_dir @@ fun dir ->
  let summary =
    Sup.run
      { fast_cfg with Sup.sv_timeout_s = 0.1; Sup.sv_max_attempts = 1 }
      ~command:(fun ~id:_ ~attempt:_ -> sh "sleep 30")
      ~verify:(verify_marker dir) [ "stuck" ]
  in
  Alcotest.(check int) "timeout counted" 1 summary.Sup.sm_timeouts;
  match List.assoc "stuck" summary.Sup.sm_outcomes with
  | Sup.Quarantined { last_error; _ } ->
    Alcotest.(check bool) "cause named in the error" true
      (String.length last_error >= 7 && String.sub last_error 0 7 = "timeout")
  | Sup.Completed _ -> Alcotest.fail "a hung shard must not complete"

let test_supervisor_chaos_kills_deterministically () =
  with_temp_dir @@ fun dir ->
  let cfg =
    {
      fast_cfg with
      Sup.sv_chaos = 1.0;
      Sup.sv_chaos_delay_ms = 5.;
      Sup.sv_max_attempts = 2;
      Sup.sv_seed = 42;
    }
  in
  let run () =
    Sup.run cfg
      ~command:(fun ~id:_ ~attempt:_ -> sh "sleep 30")
      ~verify:(verify_marker dir) [ "victim" ]
  in
  let s1 = run () in
  Alcotest.(check int) "every attempt chaos-killed" 2 s1.Sup.sm_chaos_kills;
  (match List.assoc "victim" s1.Sup.sm_outcomes with
  | Sup.Quarantined { last_error; _ } ->
    Alcotest.(check bool) "chaos kill named" true
      (String.length last_error >= 10 && String.sub last_error 0 10 = "chaos-kill")
  | Sup.Completed _ -> Alcotest.fail "p=1.0 chaos must kill every attempt");
  (* same config, same schedule: the summary is reproducible *)
  let s2 = run () in
  Alcotest.(check bool) "kill schedule is a function of the config" true
    (s1.Sup.sm_outcomes = s2.Sup.sm_outcomes)

(* ------------------------------------------------------------------ *)
(* Merge determinism                                                   *)
(* ------------------------------------------------------------------ *)

let write_campaign dir jobs_done =
  Manifest.write dir
    (Manifest.make ~tag:"m" ~circuits:[ "circuit_a"; "circuit_b" ]
       ~techniques:[ "dual" ] ~guards:[ "off" ] ~seeds:[ 1 ]);
  List.iter (fun j -> Ckpt.write ~dir (done_checkpoint j)) jobs_done

let test_merge_complete_and_byte_deterministic () =
  let ja = job "circuit_a" "dual" "off" 1 in
  let jb = job "circuit_b" "dual" "off" 1 in
  let snap order =
    with_temp_dir @@ fun dir ->
    write_campaign dir order;
    match Merge.of_dir dir with
    | Error e -> Alcotest.fail e
    | Ok m ->
      Alcotest.(check bool) "complete" true (Merge.complete m);
      Snapshot.to_json m.Merge.mg_snapshot
  in
  (* write order must not leak into the merged bytes *)
  Alcotest.(check string) "byte-identical under write reordering"
    (snap [ ja; jb ]) (snap [ jb; ja ])

let test_merge_strips_wallclock () =
  with_temp_dir @@ fun dir ->
  write_campaign dir
    [ job "circuit_a" "dual" "off" 1; job "circuit_b" "dual" "off" 1 ];
  match Merge.of_dir dir with
  | Error e -> Alcotest.fail e
  | Ok m ->
    List.iter
      (fun (w : Snapshot.workload) ->
        Alcotest.(check int)
          (w.Snapshot.w_name ^ ": stage_ms stripped")
          0
          (List.length w.Snapshot.w_stage_ms))
      m.Merge.mg_snapshot.Snapshot.s_workloads

let test_merge_partial_coverage () =
  with_temp_dir @@ fun dir ->
  let ja = job "circuit_a" "dual" "off" 1 in
  let jb = job "circuit_b" "dual" "off" 1 in
  write_campaign dir [ ja ];
  Ckpt.write ~dir
    {
      Ckpt.cp_version = Ckpt.schema_version;
      cp_job = jb;
      cp_status = Ckpt.Failed "exit 1 (boom)";
      cp_attempt = 3;
      cp_time = 1.0;
      cp_workload = None;
    };
  (* a checkpoint outside the matrix must be ignored, not merged *)
  Ckpt.write ~dir (done_checkpoint (job "circuit_a" "improved" "off" 1));
  match Merge.of_dir dir with
  | Error e -> Alcotest.fail e
  | Ok m ->
    Alcotest.(check bool) "not complete" false (Merge.complete m);
    Alcotest.(check int) "done" 1 m.Merge.mg_done;
    Alcotest.(check int) "failed" 1 m.Merge.mg_failed;
    Alcotest.(check int) "missing" 0 m.Merge.mg_missing;
    Alcotest.(check int) "stray checkpoint not merged" 1
      (List.length m.Merge.mg_snapshot.Snapshot.s_workloads);
    let states =
      List.map (fun (js : Merge.job_state) -> js.Merge.js_state) m.Merge.mg_states
    in
    Alcotest.(check bool) "failure surfaces in the states" true
      (List.exists (function Merge.Sfailed _ -> true | _ -> false) states)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "campaign"
    [
      ( "job",
        [
          Alcotest.test_case "id and name" `Quick test_job_id_and_name;
          Alcotest.test_case "matrix order" `Quick test_job_matrix_order;
          Alcotest.test_case "json round-trip" `Quick test_job_json_roundtrip;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "done round-trip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "failed round-trip" `Quick
            test_checkpoint_failed_roundtrip;
          Alcotest.test_case "truncation treated as missing" `Quick
            test_checkpoint_truncation_treated_missing;
          Alcotest.test_case "mislabeled file ignored" `Quick
            test_checkpoint_mislabeled_ignored;
          Alcotest.test_case "manifest round-trip" `Quick test_manifest_roundtrip;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "all jobs complete" `Quick test_supervisor_all_complete;
          Alcotest.test_case "retry with backoff" `Quick
            test_supervisor_retry_then_complete;
          Alcotest.test_case "quarantine after max attempts" `Quick
            test_supervisor_quarantine;
          Alcotest.test_case "verify rejects a clean exit" `Quick
            test_supervisor_verify_rejects_clean_exit;
          Alcotest.test_case "verify accepts a dirty exit" `Quick
            test_supervisor_verify_accepts_dirty_exit;
          Alcotest.test_case "timeout kills a hung shard" `Quick
            test_supervisor_timeout;
          Alcotest.test_case "chaos kills deterministically" `Quick
            test_supervisor_chaos_kills_deterministically;
        ] );
      ( "merge",
        [
          Alcotest.test_case "byte-deterministic" `Quick
            test_merge_complete_and_byte_deterministic;
          Alcotest.test_case "wall-clock stripped" `Quick test_merge_strips_wallclock;
          Alcotest.test_case "partial coverage reported" `Quick
            test_merge_partial_coverage;
        ] );
    ]
