module Netlist = Smt_netlist.Netlist
module Builder = Smt_netlist.Builder
module Sta = Smt_sta.Sta
module Wire = Smt_sta.Wire
module Func = Smt_cell.Func
module Vth = Smt_cell.Vth
module Cell = Smt_cell.Cell
module Library = Smt_cell.Library
module Generators = Smt_circuits.Generators

let lib = Library.default ()

(* A single inverter from PI to PO. *)
let single_inv () =
  let b = Builder.create ~name:"inv1" ~lib () in
  let a = Builder.input b "a" in
  let o = Builder.output b "o" in
  Builder.gate_into b Func.Inv [ a ] o;
  Builder.netlist b

let test_single_gate_arrival () =
  let nl = single_inv () in
  let cfg = Sta.config ~clock_period:1000.0 () in
  let sta = Sta.analyze cfg nl in
  let o = Option.get (Netlist.find_net nl "o") in
  let inv = Library.variant lib Func.Inv Vth.Low Vth.Plain in
  (* load = PO pin cap (4 fF), no wires *)
  let expected = Cell.delay inv ~load_ff:4.0 in
  Alcotest.(check (float 1e-9)) "arrival = gate delay" expected (Sta.arrival sta o);
  Alcotest.(check (float 1e-9)) "slack = T - d" (1000.0 -. expected) (Sta.net_slack sta o);
  Alcotest.(check (float 1e-9)) "wns" (1000.0 -. expected) (Sta.wns sta)

let test_chain_arrival_adds () =
  let b = Builder.create ~name:"chain" ~lib () in
  let a = Builder.input b "a" in
  let n1 = Builder.not_ b a in
  let n2 = Builder.not_ b n1 in
  let o = Builder.output b "o" in
  Builder.gate_into b Func.Inv [ n2 ] o;
  let nl = Builder.netlist b in
  let cfg = Sta.config ~clock_period:1000.0 () in
  let sta = Sta.analyze cfg nl in
  let inv = Library.variant lib Func.Inv Vth.Low Vth.Plain in
  let d_mid = Cell.delay inv ~load_ff:inv.Cell.input_cap in
  let d_last = Cell.delay inv ~load_ff:4.0 in
  let o_net = Option.get (Netlist.find_net nl "o") in
  Alcotest.(check (float 1e-9)) "three stages add"
    ((2.0 *. d_mid) +. d_last)
    (Sta.arrival sta o_net)

let test_max_of_paths () =
  (* A NAND fed by a long chain and a direct PI: arrival takes the max. *)
  let b = Builder.create ~name:"max" ~lib () in
  let a = Builder.input b "a" in
  let c = Builder.input b "c" in
  let n1 = Builder.not_ b a in
  let n2 = Builder.not_ b n1 in
  let o = Builder.output b "o" in
  Builder.gate_into b Func.Nand2 [ n2; c ] o;
  let nl = Builder.netlist b in
  let cfg = Sta.config ~clock_period:1000.0 () in
  let sta = Sta.analyze cfg nl in
  let o_net = Option.get (Netlist.find_net nl "o") in
  let path = Sta.critical_path sta in
  Alcotest.(check bool) "path nonempty" true (path <> []);
  let last = List.nth path (List.length path - 1) in
  Alcotest.(check int) "ends at output" o_net last.Sta.step_net;
  (* path should have 3 steps of logic (inv, inv, nand), not the short one *)
  Alcotest.(check int) "goes through the chain" 3
    (List.length (List.filter (fun s -> s.Sta.step_inst <> None) path))

let test_ff_to_ff_timing () =
  let b = Builder.create ~name:"ff2ff" ~lib () in
  let clk = Builder.input ~clock:true b "clk" in
  let d = Builder.input b "d" in
  let q1 = Builder.dff b ~d ~clk in
  let n1 = Builder.not_ b q1 in
  let q2 = Builder.dff b ~d:n1 ~clk in
  let o = Builder.output b "o" in
  Builder.gate_into b Func.Buf [ q2 ] o;
  let nl = Builder.netlist b in
  let cfg = Sta.config ~clock_period:200.0 () in
  let sta = Sta.analyze cfg nl in
  let eps = Sta.endpoints sta in
  let ff_eps =
    List.filter (fun ep -> match ep.Sta.kind with Sta.Ff_data _ -> true | _ -> false) eps
  in
  Alcotest.(check int) "two FF endpoints" 2 (List.length ff_eps);
  let dff = Library.variant lib Func.Dff Vth.Low Vth.Plain in
  let inv = Library.variant lib Func.Inv Vth.Low Vth.Plain in
  (* q1 -> inv -> q2.D: arrival = clk2q(load=inv cap) + inv(load=dff cap) *)
  let expected =
    Cell.delay dff ~load_ff:inv.Cell.input_cap +. Cell.delay inv ~load_ff:dff.Cell.input_cap
  in
  let ep_q2 =
    List.find
      (fun ep -> Float.abs (ep.Sta.arrival -. expected) < 1e-6)
      ff_eps
  in
  Alcotest.(check (float 1e-9)) "required = T - setup" (200.0 -. dff.Cell.setup)
    ep_q2.Sta.required

let test_timing_violation_detected () =
  let nl = Generators.ripple_adder ~registered:true ~name:"ra" ~bits:8 lib in
  let tight = Sta.config ~clock_period:50.0 () in
  let sta = Sta.analyze tight nl in
  Alcotest.(check bool) "violated at 50ps" true (not (Sta.meets_timing sta));
  Alcotest.(check bool) "tns negative" true (Sta.tns sta < 0.0);
  let loose = Sta.config ~clock_period:100000.0 () in
  let sta2 = Sta.analyze loose nl in
  Alcotest.(check bool) "met at 100ns" true (Sta.meets_timing sta2);
  Alcotest.(check (float 1e-9)) "tns zero when met" 0.0 (Sta.tns sta2)

let test_wire_model_slows () =
  let nl = single_inv () in
  let no_wire = Sta.analyze (Sta.config ~clock_period:1000.0 ()) nl in
  let wired =
    Sta.analyze
      (Sta.config ~wire:(Wire.lumped ~cap_per_fanout:10.0 ~delay_per_fanout:5.0)
         ~clock_period:1000.0 ())
      nl
  in
  let o = Option.get (Netlist.find_net nl "o") in
  Alcotest.(check bool) "wires slow arrivals" true
    (Sta.arrival wired o > Sta.arrival no_wire o)

let test_bounce_slows_mt_only () =
  let nl = single_inv () in
  let g = Option.get (Netlist.find_inst nl "inv_1") in
  let base_cfg = Sta.config ~clock_period:1000.0 () in
  let bounce_cfg = { base_cfg with Sta.bounce_of = (fun _ -> 0.1) } in
  let o = Option.get (Netlist.find_net nl "o") in
  let before = Sta.arrival (Sta.analyze bounce_cfg nl) o in
  (* plain cell: bounce ignored *)
  Alcotest.(check (float 1e-9)) "plain unaffected"
    (Sta.arrival (Sta.analyze base_cfg nl) o)
    before;
  Netlist.replace_cell nl g (Library.variant lib Func.Inv Vth.Low Vth.Mt_vgnd);
  let mt_base = Sta.arrival (Sta.analyze base_cfg nl) o in
  let mt_bounced = Sta.arrival (Sta.analyze bounce_cfg nl) o in
  Alcotest.(check bool) "MT slowed by bounce" true (mt_bounced > mt_base)

let test_clock_latency_shifts () =
  let b = Builder.create ~name:"lat" ~lib () in
  let clk = Builder.input ~clock:true b "clk" in
  let d = Builder.input b "d" in
  let q1 = Builder.dff b ~d ~clk in
  let n = Builder.not_ b q1 in
  let _q2 = Builder.dff b ~d:n ~clk in
  let o = Builder.output b "o" in
  Builder.gate_into b Func.Buf [ q1 ] o;
  let nl = Builder.netlist b in
  let cfg = Sta.config ~clock_period:500.0 () in
  let sta0 = Sta.analyze cfg nl in
  (* capture-only latency relaxes setup at the capturing FF *)
  let ffs =
    List.filter (fun i -> (Netlist.cell nl i).Cell.kind = Func.Dff) (Netlist.live_insts nl)
  in
  let capture_ff =
    List.find
      (fun i ->
        match Netlist.pin_net nl i "D" with
        | Some dnet -> Netlist.driver nl dnet <> None
        | None -> false)
      (List.filter
         (fun i ->
           match Netlist.pin_net nl i "D" with
           | Some dnet -> not (Netlist.is_pi nl dnet)
           | None -> false)
         ffs)
  in
  let cfg_lat =
    { cfg with Sta.clock_latency = (fun i -> if i = capture_ff then 30.0 else 0.0) }
  in
  let sta1 = Sta.analyze cfg_lat nl in
  let slack_of sta =
    List.fold_left
      (fun acc ep ->
        match ep.Sta.kind with Sta.Ff_data i when i = capture_ff -> ep.Sta.slack | _ -> acc)
      nan (Sta.endpoints sta)
  in
  Alcotest.(check (float 1e-6)) "late capture clock adds slack" (slack_of sta0 +. 30.0)
    (slack_of sta1)

let test_hold_violation_from_skew () =
  (* Launch FF with zero latency into capture FF with large latency: the
     short path violates hold. *)
  let b = Builder.create ~name:"hold" ~lib () in
  let clk = Builder.input ~clock:true b "clk" in
  let d = Builder.input b "d" in
  let q1 = Builder.dff b ~d ~clk in
  let q2 = Builder.dff b ~d:q1 ~clk in
  let o = Builder.output b "o" in
  Builder.gate_into b Func.Buf [ q2 ] o;
  let nl = Builder.netlist b in
  let ffs =
    List.filter (fun i -> (Netlist.cell nl i).Cell.kind = Func.Dff) (Netlist.live_insts nl)
  in
  let capture =
    List.find
      (fun i ->
        match Netlist.pin_net nl i "D" with
        | Some dn -> not (Netlist.is_pi nl dn)
        | None -> false)
      ffs
  in
  let cfg =
    {
      (Sta.config ~clock_period:500.0 ()) with
      Sta.clock_latency = (fun i -> if i = capture then 100.0 else 0.0);
    }
  in
  let sta = Sta.analyze cfg nl in
  Alcotest.(check bool) "hold violated" true (not (Sta.meets_hold sta));
  Alcotest.(check bool) "setup still fine" true (Sta.meets_timing sta)

let test_worst_endpoints_sorted () =
  let nl = Generators.ripple_adder ~registered:true ~name:"ra" ~bits:6 lib in
  let sta = Sta.analyze (Sta.config ~clock_period:400.0 ()) nl in
  let worst = Sta.worst_endpoints sta 5 in
  Alcotest.(check int) "asked 5" 5 (List.length worst);
  let slacks = List.map (fun ep -> ep.Sta.slack) worst in
  Alcotest.(check (list (float 1e-9))) "ascending" (List.sort compare slacks) slacks;
  (match (worst, Sta.endpoints sta) with
  | w :: _, eps ->
    List.iter (fun ep -> Alcotest.(check bool) "global min" true (ep.Sta.slack >= w.Sta.slack)) eps
  | [], _ -> Alcotest.fail "no endpoints")

let test_worst_paths_structure () =
  let nl = Generators.ripple_adder ~registered:true ~name:"rp" ~bits:6 lib in
  let sta =
    Sta.analyze
      {
        (Sta.config ~clock_period:400.0 ()) with
        Sta.wire = Wire.lumped ~cap_per_fanout:1.5 ~delay_per_fanout:3.0;
      }
      nl
  in
  let k = 4 in
  let paths = Sta.worst_paths sta k in
  Alcotest.(check int) "asked k paths" k (List.length paths);
  (match paths with
  | first :: _ ->
    Alcotest.(check (float 1e-9)) "first path slack is the wns" (Sta.wns sta)
      first.Sta.path_endpoint.Sta.slack
  | [] -> Alcotest.fail "no paths");
  List.iter
    (fun (p : Sta.path) ->
      let ep = p.Sta.path_endpoint in
      Alcotest.(check bool) "path non-empty" true (p.Sta.path_arcs <> []);
      (* the structured arcs must reproduce the endpoint arrival exactly:
         sum of cell+wire delays plus the capture hop *)
      let total =
        List.fold_left
          (fun acc (a : Sta.path_arc) -> acc +. a.Sta.arc_cell_delay +. a.Sta.arc_wire_delay)
          0.0 p.Sta.path_arcs
        +. p.Sta.path_capture_wire
      in
      Alcotest.(check (float 1e-6)) "arc delays sum to the arrival" ep.Sta.arrival total;
      (* per-arc consistency with the raw analysis *)
      List.iter
        (fun (a : Sta.path_arc) ->
          Alcotest.(check (float 1e-9)) "arc arrival matches analysis"
            (Sta.arrival sta a.Sta.arc_net) a.Sta.arc_arrival;
          (match a.Sta.arc_inst with
          | Some iid ->
            Alcotest.(check (float 1e-9)) "arc cell delay is the used delay"
              (Sta.used_delay sta iid) a.Sta.arc_cell_delay
          | None -> Alcotest.(check (float 1e-9)) "launch has no cell delay" 0.0 a.Sta.arc_cell_delay);
          Alcotest.(check bool) "delays finite" true
            (Float.is_finite a.Sta.arc_cell_delay && Float.is_finite a.Sta.arc_wire_delay))
        p.Sta.path_arcs;
      (* arrivals ascend along the path *)
      ignore
        (List.fold_left
           (fun prev (a : Sta.path_arc) ->
             Alcotest.(check bool) "arrivals non-decreasing" true (a.Sta.arc_arrival >= prev -. 1e-9);
             a.Sta.arc_arrival)
           neg_infinity p.Sta.path_arcs))
    paths;
  (* ascending by slack, consistent with worst_endpoints *)
  let slacks = List.map (fun p -> p.Sta.path_endpoint.Sta.slack) paths in
  Alcotest.(check (list (float 1e-9))) "paths ascend by slack" (List.sort compare slacks) slacks

let test_endpoint_name_forms () =
  let nl = Generators.ripple_adder ~registered:true ~name:"rn" ~bits:4 lib in
  let sta = Sta.analyze (Sta.config ~clock_period:400.0 ()) nl in
  List.iter
    (fun ep ->
      let name = Sta.endpoint_name sta ep in
      Alcotest.(check bool) "non-empty" true (name <> "");
      match ep.Sta.kind with
      | Sta.Ff_data _ ->
        Alcotest.(check bool) "ff endpoint named inst/D" true
          (String.length name > 2 && String.sub name (String.length name - 2) 2 = "/D")
      | Sta.Primary_output port -> Alcotest.(check string) "po endpoint is the port" port name)
    (Sta.endpoints sta)

let test_inst_slack () =
  let nl = single_inv () in
  let g = Option.get (Netlist.find_inst nl "inv_1") in
  let sta = Sta.analyze (Sta.config ~clock_period:100.0 ()) nl in
  Alcotest.(check bool) "inst slack finite" true (Sta.inst_slack sta g < infinity);
  Alcotest.(check (float 1e-9)) "matches net slack"
    (Sta.net_slack sta (Option.get (Netlist.find_net nl "o")))
    (Sta.inst_slack sta g)

let test_input_arrival_shifts () =
  let nl = single_inv () in
  let base = Sta.analyze (Sta.config ~clock_period:1000.0 ()) nl in
  let shifted =
    Sta.analyze { (Sta.config ~clock_period:1000.0 ()) with Sta.input_arrival = 40.0 } nl
  in
  let o = Option.get (Netlist.find_net nl "o") in
  Alcotest.(check (float 1e-9)) "arrival shifts by input_arrival"
    (Sta.arrival base o +. 40.0) (Sta.arrival shifted o);
  Alcotest.(check (float 1e-9)) "slack shrinks accordingly" (Sta.wns base -. 40.0)
    (Sta.wns shifted)

let test_output_margin_tightens () =
  let nl = single_inv () in
  let base = Sta.analyze (Sta.config ~clock_period:1000.0 ()) nl in
  let tight =
    Sta.analyze { (Sta.config ~clock_period:1000.0 ()) with Sta.output_margin = 100.0 } nl
  in
  Alcotest.(check (float 1e-9)) "wns tightened by the margin" (Sta.wns base -. 100.0)
    (Sta.wns tight)

let test_hold_margin () =
  let b = Builder.create ~name:"hm" ~lib () in
  let clk = Builder.input ~clock:true b "clk" in
  let d = Builder.input b "d" in
  let q1 = Builder.dff b ~d ~clk in
  let q2 = Builder.dff b ~d:q1 ~clk in
  let o = Builder.output b "o" in
  Builder.gate_into b Func.Buf [ q2 ] o;
  let nl = Builder.netlist b in
  let base = Sta.analyze (Sta.config ~clock_period:500.0 ()) nl in
  let margin =
    Sta.analyze { (Sta.config ~clock_period:500.0 ()) with Sta.hold_margin = 10.0 } nl
  in
  Alcotest.(check (float 1e-9)) "hold slack shrinks by the margin"
    (Sta.worst_hold_slack base -. 10.0)
    (Sta.worst_hold_slack margin)

let test_used_delay () =
  let nl = single_inv () in
  let cfg = Sta.config ~clock_period:1000.0 () in
  let sta = Sta.analyze cfg nl in
  let g = Option.get (Netlist.find_inst nl "inv_1") in
  Alcotest.(check (float 1e-9)) "matches the analytic delay" (Sta.cell_delay cfg nl g)
    (Sta.used_delay sta g);
  Alcotest.(check (float 1e-9)) "unknown instance" 0.0 (Sta.used_delay sta 999999)

let test_load_of_net () =
  let b = Builder.create ~name:"load" ~lib () in
  let a = Builder.input b "a" in
  let x = Builder.not_ b a in
  let y1 = Builder.not_ b x in
  let _y2 = Builder.not_ b y1 in
  let o = Builder.output b "o" in
  Builder.gate_into b Func.Buf [ x ] o;
  let nl = Builder.netlist b in
  let cfg = Sta.config ~clock_period:100.0 () in
  let inv = Library.variant lib Func.Inv Vth.Low Vth.Plain in
  let buf = Library.variant lib Func.Buf Vth.Low Vth.Plain in
  (* net x drives: one INV and one BUF *)
  let x_net = Option.get (Netlist.find_net nl (Netlist.net_name nl x)) in
  Alcotest.(check (float 1e-9)) "pin caps sum"
    (inv.Cell.input_cap +. buf.Cell.input_cap)
    (Sta.load_of_net cfg nl x_net)

let () =
  Alcotest.run "smt_sta"
    [
      ( "arrival",
        [
          Alcotest.test_case "single gate" `Quick test_single_gate_arrival;
          Alcotest.test_case "chain adds" `Quick test_chain_arrival_adds;
          Alcotest.test_case "max over paths" `Quick test_max_of_paths;
          Alcotest.test_case "load of net" `Quick test_load_of_net;
        ] );
      ( "constraints",
        [
          Alcotest.test_case "ff-to-ff setup" `Quick test_ff_to_ff_timing;
          Alcotest.test_case "violation detection" `Quick test_timing_violation_detected;
          Alcotest.test_case "clock latency" `Quick test_clock_latency_shifts;
          Alcotest.test_case "hold from skew" `Quick test_hold_violation_from_skew;
        ] );
      ( "models",
        [
          Alcotest.test_case "wire model" `Quick test_wire_model_slows;
          Alcotest.test_case "bounce derating" `Quick test_bounce_slows_mt_only;
        ] );
      ( "queries",
        [
          Alcotest.test_case "worst endpoints sorted" `Quick test_worst_endpoints_sorted;
          Alcotest.test_case "worst paths structure" `Quick test_worst_paths_structure;
          Alcotest.test_case "endpoint names" `Quick test_endpoint_name_forms;
          Alcotest.test_case "inst slack" `Quick test_inst_slack;
          Alcotest.test_case "used delay" `Quick test_used_delay;
        ] );
      ( "config-knobs",
        [
          Alcotest.test_case "input arrival" `Quick test_input_arrival_shifts;
          Alcotest.test_case "output margin" `Quick test_output_margin_tightens;
          Alcotest.test_case "hold margin" `Quick test_hold_margin;
        ] );
    ]
