(* Tests for the extension features: drive-strength sizing, incremental
   STA, PVT corners, wake-up analysis, retention registers, the netlist
   optimizer, VCD dumping, and the extra generators. *)

module Netlist = Smt_netlist.Netlist
module Builder = Smt_netlist.Builder
module Check = Smt_check.Drc
module Clone = Smt_netlist.Clone
module Optimize = Smt_netlist.Optimize
module Sta = Smt_sta.Sta
module Placement = Smt_place.Placement
module Leakage = Smt_power.Leakage
module Wakeup = Smt_power.Wakeup
module Logic = Smt_sim.Logic
module Simulator = Smt_sim.Simulator
module Vcd = Smt_sim.Vcd
module Equiv = Smt_sim.Equiv
module Gate_sizing = Smt_core.Gate_sizing
module Retention = Smt_core.Retention
module Vth_assign = Smt_core.Vth_assign
module Mt_replace = Smt_core.Mt_replace
module Switch_insert = Smt_core.Switch_insert
module Cluster = Smt_core.Cluster
module Flow = Smt_core.Flow
module Cell = Smt_cell.Cell
module Func = Smt_cell.Func
module Vth = Smt_cell.Vth
module Corner = Smt_cell.Corner
module Library = Smt_cell.Library
module Generators = Smt_circuits.Generators

let lib = Library.default ()
let tech = Library.tech lib

let period_for nl margin =
  let probe = 1e6 in
  let sta = Sta.analyze (Sta.config ~clock_period:probe ()) nl in
  (probe -. Sta.wns sta) *. (1.0 +. margin)

(* --- drive strengths --- *)

let test_drive_variants_exist () =
  List.iter
    (fun drive ->
      let c = Library.variant ~drive lib Func.Nand2 Vth.Low Vth.Plain in
      Alcotest.(check int) "drive recorded" drive c.Cell.drive)
    Library.drives

let test_drive_scaling () =
  let x1 = Library.variant ~drive:1 lib Func.Nand2 Vth.Low Vth.Plain in
  let x4 = Library.variant ~drive:4 lib Func.Nand2 Vth.Low Vth.Plain in
  Alcotest.(check (float 1e-9)) "area x4" (4.0 *. x1.Cell.area) x4.Cell.area;
  Alcotest.(check (float 1e-9)) "cap x4" (4.0 *. x1.Cell.input_cap) x4.Cell.input_cap;
  Alcotest.(check (float 1e-9)) "leak x4" (4.0 *. x1.Cell.leak_standby) x4.Cell.leak_standby;
  Alcotest.(check (float 1e-9)) "drive res /4" (x1.Cell.drive_res /. 4.0) x4.Cell.drive_res;
  (* a strong gate into a big load is faster *)
  Alcotest.(check bool) "x4 faster at 40fF" true
    (Cell.delay x4 ~load_ff:40.0 < Cell.delay x1 ~load_ff:40.0)

let test_resize_restyle_compose () =
  let c = Library.variant ~drive:2 lib Func.Xor2 Vth.Low Vth.Plain in
  let hv = Library.restyle lib c Vth.High Vth.Plain in
  Alcotest.(check int) "restyle keeps drive" 2 hv.Cell.drive;
  let x4 = Library.resize lib hv 4 in
  Alcotest.(check int) "resize changes drive" 4 x4.Cell.drive;
  Alcotest.(check bool) "resize keeps vth" true (x4.Cell.vth = Vth.High)

let test_mt_variants_sized () =
  let mtv2 = Library.variant ~drive:2 lib Func.Nand2 Vth.Low Vth.Mt_vgnd in
  Alcotest.(check int) "MT X2 exists" 2 mtv2.Cell.drive;
  let mte2 = Library.variant ~drive:2 lib Func.Nand2 Vth.Low Vth.Mt_embedded in
  let mte1 = Library.variant ~drive:1 lib Func.Nand2 Vth.Low Vth.Mt_embedded in
  Alcotest.(check bool) "bigger embedded footer for stronger cell" true
    (mte2.Cell.switch_width > mte1.Cell.switch_width)

let test_upsize_fixes_timing () =
  (* an X1 inverter driving a huge fanout fails; upsizing repairs it *)
  let b = Builder.create ~name:"up" ~lib () in
  let a = Builder.input b "a" in
  let x = Builder.not_ b a in
  for i = 0 to 19 do
    let o = Builder.output b (Printf.sprintf "o%d" i) in
    Builder.gate_into b Func.Buf [ x ] o
  done;
  let nl = Builder.netlist b in
  let tight = period_for nl 0.0 *. 0.82 in
  let cfg = Sta.config ~clock_period:tight () in
  Alcotest.(check bool) "initially failing" true
    (not (Sta.meets_timing (Sta.analyze cfg nl)));
  let r = Gate_sizing.upsize_critical cfg nl in
  Alcotest.(check bool) "some cells upsized" true (r.Gate_sizing.resized > 0);
  Alcotest.(check bool) "wns improved" true
    (Sta.wns r.Gate_sizing.sta > Sta.wns (Sta.analyze cfg (Clone.copy nl)) -. 1e9);
  Alcotest.(check bool) "timing met after upsizing" true
    (Sta.meets_timing r.Gate_sizing.sta)

let test_downsize_recovers_area () =
  let nl = Generators.ripple_adder ~name:"ra" ~bits:8 lib in
  (* start everything at X2 so there is room to shrink *)
  Netlist.iter_insts nl (fun iid ->
      let c = Netlist.cell nl iid in
      if Library.has_variant ~drive:2 lib c.Cell.kind c.Cell.vth c.Cell.style then
        Netlist.replace_cell nl iid (Library.resize lib c 2));
  let golden = Clone.copy nl in
  let area0 = Netlist.total_area nl in
  let cfg = Sta.config ~clock_period:(period_for nl 0.4) () in
  let r = Gate_sizing.downsize_idle cfg nl in
  Alcotest.(check bool) "cells downsized" true (r.Gate_sizing.resized > 0);
  Alcotest.(check bool) "area shrank" true (Netlist.total_area nl < area0);
  Alcotest.(check bool) "timing still met" true (Sta.meets_timing r.Gate_sizing.sta);
  Alcotest.(check bool) "function preserved" true (Equiv.equivalent ~vectors:32 golden nl)

let test_flow_gate_sizing_knob () =
  (* as if synthesis had mapped to X2 cells: the sizing knob recovers the
     excess drive off the critical paths *)
  let gen () =
    let nl = Generators.multiplier ~name:"m6" ~bits:6 lib in
    Netlist.iter_insts nl (fun iid ->
        let c = Netlist.cell nl iid in
        if Library.has_variant ~drive:2 lib c.Cell.kind c.Cell.vth c.Cell.style then
          Netlist.replace_cell nl iid (Library.resize lib c 2));
    nl
  in
  let base = Flow.run Flow.Dual_vth (gen ()) in
  let sized =
    Flow.run ~options:{ Flow.default_options with Flow.gate_sizing = true } Flow.Dual_vth
      (gen ())
  in
  Alcotest.(check bool) "resizes happen" true (sized.Flow.cells_downsized > 0);
  Alcotest.(check bool) "area improves" true (sized.Flow.area < base.Flow.area);
  Alcotest.(check bool) "timing met" true (sized.Flow.timing_met)

(* --- incremental STA --- *)

let agree msg a b =
  let eps_eq x y =
    (Float.is_nan x && Float.is_nan y)
    || x = y
    || Float.abs (x -. y) <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
  in
  let nl = Sta.netlist a in
  Netlist.iter_nets nl (fun nid ->
      if not (eps_eq (Sta.arrival a nid) (Sta.arrival b nid)) then
        Alcotest.failf "%s: arrival mismatch on %s (%f vs %f)" msg (Netlist.net_name nl nid)
          (Sta.arrival a nid) (Sta.arrival b nid);
      if not (eps_eq (Sta.net_slack a nid) (Sta.net_slack b nid)) then
        Alcotest.failf "%s: slack mismatch on %s" msg (Netlist.net_name nl nid));
  if not (eps_eq (Sta.wns a) (Sta.wns b)) then Alcotest.failf "%s: wns mismatch" msg;
  if not (eps_eq (Sta.worst_hold_slack a) (Sta.worst_hold_slack b)) then
    Alcotest.failf "%s: hold mismatch" msg

let test_incremental_matches_full () =
  let nl = Generators.multiplier ~name:"m6" ~bits:6 lib in
  let cfg = Sta.config ~clock_period:(period_for nl 0.2) () in
  let sta = Sta.analyze cfg nl in
  let rng = Smt_util.Rng.create 9 in
  let victims =
    Netlist.live_insts nl
    |> List.filter (fun iid ->
           let c = Netlist.cell nl iid in
           c.Cell.style = Vth.Plain && c.Cell.vth = Vth.Low
           && not (Func.is_sequential c.Cell.kind)
           && not (Func.is_infrastructure c.Cell.kind))
  in
  let batch = Smt_util.Rng.sample rng 12 (Array.of_list victims) |> Array.to_list in
  List.iter
    (fun iid ->
      let c = Netlist.cell nl iid in
      Netlist.replace_cell nl iid (Library.restyle lib c Vth.High Vth.Plain))
    batch;
  let incremental = Sta.update sta ~changed:batch in
  let full = Sta.analyze cfg nl in
  agree "hv swap" incremental full

let test_incremental_resize () =
  let nl = Generators.ripple_adder ~name:"ra" ~bits:8 lib in
  let cfg = Sta.config ~clock_period:(period_for nl 0.2) () in
  let sta = Sta.analyze cfg nl in
  let some =
    Netlist.live_insts nl
    |> List.filter (fun iid ->
           Library.has_variant ~drive:4 lib (Netlist.cell nl iid).Cell.kind
             (Netlist.cell nl iid).Cell.vth (Netlist.cell nl iid).Cell.style)
    |> List.filteri (fun i _ -> i mod 5 = 0)
  in
  List.iter
    (fun iid -> Netlist.replace_cell nl iid (Library.resize lib (Netlist.cell nl iid) 4))
    some;
  agree "resize" (Sta.update sta ~changed:some) (Sta.analyze cfg nl)

let test_incremental_chain () =
  (* several successive updates stay exact *)
  let nl = Generators.multiplier ~name:"m5" ~bits:5 lib in
  let cfg = Sta.config ~clock_period:(period_for nl 0.3) () in
  let sta = ref (Sta.analyze cfg nl) in
  let rng = Smt_util.Rng.create 4 in
  for _round = 1 to 5 do
    let victims =
      Netlist.live_insts nl
      |> List.filter (fun iid ->
             let c = Netlist.cell nl iid in
             (not (Func.is_sequential c.Cell.kind)) && not (Func.is_infrastructure c.Cell.kind))
    in
    let batch = Smt_util.Rng.sample rng 5 (Array.of_list victims) |> Array.to_list in
    List.iter
      (fun iid ->
        let c = Netlist.cell nl iid in
        let vth = if c.Cell.vth = Vth.Low then Vth.High else Vth.Low in
        if Library.has_variant ~drive:c.Cell.drive lib c.Cell.kind vth c.Cell.style then
          Netlist.replace_cell nl iid (Library.restyle lib c vth c.Cell.style))
      batch;
    sta := Sta.update !sta ~changed:batch
  done;
  agree "chained updates" !sta (Sta.analyze cfg nl)

(* --- corners --- *)

let test_corner_typical_neutral () =
  let c = Corner.typical tech in
  Alcotest.(check (float 1e-9)) "leak x1" 1.0 (Corner.leakage_factor tech c);
  Alcotest.(check (float 1e-9)) "delay x1" 1.0 (Corner.delay_factor tech c)

let test_corner_monotone_temperature () =
  let prev = ref 0.0 in
  List.iter
    (fun temp ->
      let c = Corner.make ~temperature_c:temp tech in
      let f = Corner.leakage_factor tech c in
      Alcotest.(check bool) "leak grows with temperature" true (f > !prev);
      prev := f)
    [ -40.0; 0.0; 25.0; 85.0; 125.0 ]

let test_corner_process () =
  let fast = Corner.make ~process:Corner.Fast tech in
  let slow = Corner.make ~process:Corner.Slow tech in
  Alcotest.(check bool) "fast leaks more" true
    (Corner.leakage_factor tech fast > Corner.leakage_factor tech slow);
  Alcotest.(check bool) "slow is slower" true
    (Corner.delay_factor tech slow > Corner.delay_factor tech fast)

let test_corner_leakage_scaling () =
  let nl = Generators.c17 lib in
  let base = Leakage.standby nl in
  let hot = Leakage.at_corner (Corner.make ~temperature_c:95.0 tech) nl in
  Alcotest.(check bool) "hot leaks much more" true
    (hot.Leakage.total > 5.0 *. base.Leakage.total);
  (* scaling is uniform: the ratio structure is preserved *)
  Alcotest.(check (float 1e-6)) "uniform scaling"
    (hot.Leakage.total /. base.Leakage.total)
    (hot.Leakage.low_vth_logic /. base.Leakage.low_vth_logic)

(* --- wakeup --- *)

let mt_cluster_fixture n width =
  let nl = Netlist.create ~name:"wake" ~lib in
  let mte = Netlist.add_input nl "MTE" in
  let a = Netlist.add_input nl "a" in
  let mt = Library.variant lib Func.Inv Vth.Low Vth.Mt_vgnd in
  let members =
    List.init n (fun i ->
        let z = Netlist.add_output nl (Printf.sprintf "z%d" i) in
        Netlist.add_inst nl ~name:(Printf.sprintf "m%d" i) mt [ ("A", a); ("Z", z) ])
  in
  let sw = Netlist.add_inst nl ~name:"sw0" (Library.switch lib ~width) [ ("MTE", mte) ] in
  List.iter (fun m -> Netlist.set_vgnd_switch nl m (Some sw)) members;
  nl

let test_wakeup_scales_with_members () =
  let small = Wakeup.analyze (mt_cluster_fixture 2 4.0) ~wire_length_of:(fun _ -> 10.0) in
  let large = Wakeup.analyze (mt_cluster_fixture 20 4.0) ~wire_length_of:(fun _ -> 10.0) in
  Alcotest.(check bool) "more members, slower wake" true
    (Wakeup.worst_wake_time large > Wakeup.worst_wake_time small);
  Alcotest.(check bool) "more members, more energy" true
    (Wakeup.total_wake_energy large > Wakeup.total_wake_energy small)

let test_wakeup_wider_switch_faster () =
  let narrow = Wakeup.analyze (mt_cluster_fixture 10 1.0) ~wire_length_of:(fun _ -> 10.0) in
  let wide = Wakeup.analyze (mt_cluster_fixture 10 8.0) ~wire_length_of:(fun _ -> 10.0) in
  Alcotest.(check bool) "wider switch wakes faster" true
    (Wakeup.worst_wake_time wide < Wakeup.worst_wake_time narrow);
  (* but rushes more current *)
  (match (narrow, wide) with
  | [ n ], [ w ] ->
    Alcotest.(check bool) "rush current grows" true
      (w.Wakeup.rush_current_ua > n.Wakeup.rush_current_ua)
  | _ -> Alcotest.fail "one cluster each")

let test_wakeup_empty () =
  let nl = Generators.c17 lib in
  Alcotest.(check (float 1e-9)) "no switches, no wake" 0.0
    (Wakeup.block_wake_time nl ~wire_length_of:(fun _ -> 0.0))

(* --- retention --- *)

let test_retention_cell () =
  let ret = Library.retention_dff lib in
  let lv = Library.variant lib Func.Dff Vth.Low Vth.Plain in
  Alcotest.(check bool) "recognized" true (Library.is_retention ret);
  Alcotest.(check bool) "plain not retention" false (Library.is_retention lv);
  Alcotest.(check bool) "bigger" true (ret.Cell.area > lv.Cell.area);
  Alcotest.(check bool) "slower" true (ret.Cell.intrinsic_delay > lv.Cell.intrinsic_delay);
  Alcotest.(check bool) "far less standby leak" true
    (ret.Cell.leak_standby < lv.Cell.leak_standby /. 50.0)

let test_retention_conversion () =
  let nl = Generators.multiplier ~name:"m6" ~bits:6 lib in
  let golden = Clone.copy nl in
  let cfg = Sta.config ~clock_period:(period_for nl 0.3) () in
  let before = (Leakage.standby nl).Leakage.sequential in
  let r = Retention.convert cfg nl in
  Alcotest.(check bool) "ffs converted" true (r.Retention.converted > 0);
  Alcotest.(check int) "listing agrees" r.Retention.converted
    (List.length (Retention.retention_registers nl));
  Alcotest.(check bool) "sequential leakage falls" true
    ((Leakage.standby nl).Leakage.sequential < before);
  Alcotest.(check bool) "timing met" true (Sta.meets_timing r.Retention.sta);
  Alcotest.(check bool) "function preserved" true (Equiv.equivalent ~vectors:32 golden nl)

let test_retention_flow_knob () =
  let gen () = Generators.multiplier ~name:"m6" ~bits:6 lib in
  let base = Flow.run Flow.Improved_smt (gen ()) in
  let ret =
    Flow.run
      ~options:{ Flow.default_options with Flow.retention_registers = true }
      Flow.Improved_smt (gen ())
  in
  Alcotest.(check bool) "ffs retained" true (ret.Flow.ffs_retained > 0);
  Alcotest.(check bool) "leakage lower with retention" true
    (ret.Flow.standby_nw < base.Flow.standby_nw);
  Alcotest.(check bool) "timing met" true ret.Flow.timing_met

(* --- optimizer --- *)

let test_dead_logic_removal () =
  let b = Builder.create ~name:"dead" ~lib () in
  let a = Builder.input b "a" in
  let keep = Builder.not_ b a in
  let o = Builder.output b "o" in
  Builder.gate_into b Func.Buf [ keep ] o;
  (* a dead cone: three cells feeding nothing *)
  let d1 = Builder.not_ b a in
  let d2 = Builder.and_ b d1 keep in
  let _d3 = Builder.not_ b d2 in
  let nl = Builder.netlist b in
  let live_before = List.length (Netlist.live_insts nl) in
  let removed = Optimize.remove_dead_logic nl in
  Alcotest.(check int) "three dead cells" 3 removed;
  Alcotest.(check int) "live count" (live_before - 3) (List.length (Netlist.live_insts nl));
  Alcotest.(check (list string)) "valid after" [] (Check.validate nl)

let test_buffer_collapse () =
  let b = Builder.create ~name:"bufs" ~lib () in
  let a = Builder.input b "a" in
  let x = Builder.not_ b a in
  let b1 = Builder.gate b Func.Buf [ x ] in
  let b2 = Builder.gate b Func.Buf [ b1 ] in
  let y = Builder.not_ b b2 in
  let o = Builder.output b "o" in
  Builder.gate_into b Func.Buf [ y ] o;
  let nl = Builder.netlist b in
  let golden = Clone.copy nl in
  let collapsed = Optimize.collapse_buffers nl in
  Alcotest.(check int) "two internal buffers gone" 2 collapsed;
  Alcotest.(check (list string)) "valid after" [] (Check.validate nl);
  Alcotest.(check bool) "equivalent" true (Equiv.equivalent golden nl)

let test_optimize_preserves_flow_result () =
  let nl = Generators.multiplier ~name:"m6" ~bits:6 lib in
  ignore (Flow.run Flow.Improved_smt nl);
  let golden = Clone.copy nl in
  let r = Optimize.run nl in
  Alcotest.(check bool) "terminates" true (r.Optimize.iterations >= 1);
  Alcotest.(check (list string)) "still post-MT valid" []
    (Check.validate ~phase:Check.Post_mt nl);
  Alcotest.(check bool) "equivalent" true (Equiv.equivalent ~vectors:24 golden nl)

let test_infrastructure_protected () =
  let nl = Generators.multiplier ~name:"m6" ~bits:6 lib in
  ignore (Flow.run Flow.Improved_smt nl);
  let count_infra () =
    List.length
      (List.filter
         (fun iid ->
           let name = Netlist.inst_name nl iid in
           String.length name >= 6
           && (String.sub name 0 6 = "ctsbuf" || String.sub name 0 6 = "mtebuf"
              || String.sub name 0 6 = "ecobuf"))
         (Netlist.live_insts nl))
  in
  let before = count_infra () in
  ignore (Optimize.run nl);
  Alcotest.(check int) "cts/mte/eco buffers untouched" before (count_infra ())

(* --- VCD --- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub hay i nn = needle || loop (i + 1)) in
  loop 0

let test_vcd_output () =
  let nl = Generators.counter ~name:"cnt" ~bits:3 lib in
  let sim = Simulator.create nl in
  Simulator.reset sim;
  let vcd = Vcd.of_ports nl in
  Simulator.set_inputs sim [ ("en", Logic.T) ];
  for time = 0 to 7 do
    Simulator.propagate sim;
    Vcd.sample vcd sim ~time;
    Simulator.clock_edge sim
  done;
  let text = Vcd.to_string vcd in
  Alcotest.(check bool) "has header" true (contains text "$enddefinitions");
  Alcotest.(check bool) "declares count0" true (contains text "count0");
  Alcotest.(check bool) "has timestamps" true (contains text "#0");
  Alcotest.(check bool) "value changes recorded" true (contains text "#3")

let test_vcd_dedup_and_changes_only () =
  let nl = Generators.c17 lib in
  let nid = Option.get (Netlist.find_net nl "G22") in
  let vcd = Vcd.create nl ~nets:[ nid; nid ] in
  let sim = Simulator.create nl in
  Simulator.set_inputs sim
    (List.map (fun (n, _) -> (n, Logic.F)) (Netlist.inputs nl));
  Simulator.propagate sim;
  Vcd.sample vcd sim ~time:0;
  Vcd.sample vcd sim ~time:1;
  (* unchanged value: no second event *)
  let text = Vcd.to_string vcd in
  Alcotest.(check bool) "time 0 present" true (contains text "#0");
  Alcotest.(check bool) "time 1 absent (no change)" false (contains text "#1")

(* --- new generators --- *)

let test_kogge_stone_correct () =
  let nl = Generators.kogge_stone ~registered:false ~name:"ks4" ~bits:4 lib in
  let sim = Simulator.create nl in
  for x = 0 to 15 do
    for y = 0 to 15 do
      let vec =
        List.init 4 (fun i -> (Printf.sprintf "a%d" i, Logic.of_bool (x land (1 lsl i) <> 0)))
        @ List.init 4 (fun i -> (Printf.sprintf "b%d" i, Logic.of_bool (y land (1 lsl i) <> 0)))
      in
      Simulator.set_inputs sim vec;
      Simulator.propagate sim;
      let outs = Simulator.output_values sim in
      let s =
        List.fold_left
          (fun acc i ->
            match List.assoc_opt (Printf.sprintf "s%d" i) outs with
            | Some Logic.T -> acc lor (1 lsl i)
            | Some (Logic.F | Logic.X) | None -> acc)
          0
          (List.init 4 Fun.id)
      in
      let s = match List.assoc "cout" outs with Logic.T -> s lor 16 | Logic.F | Logic.X -> s in
      Alcotest.(check int) (Printf.sprintf "%d+%d" x y) (x + y) s
    done
  done

let test_kogge_stone_shallower_than_ripple () =
  let ks = Generators.kogge_stone ~registered:false ~name:"ks16" ~bits:16 lib in
  let ra = Generators.ripple_adder ~registered:false ~name:"ra16" ~bits:16 lib in
  let depth nl =
    let sta = Sta.analyze (Sta.config ~clock_period:1e6 ()) nl in
    1e6 -. Sta.wns sta
  in
  Alcotest.(check bool) "prefix adder is faster" true (depth ks < depth ra)

let test_crc_period () =
  (* a 4-bit LFSR with taps [1] (x^4 + x + 1) runs through 15 nonzero
     states when fed zeros from a nonzero seed *)
  let nl = Generators.crc ~name:"crc4" ~bits:4 ~taps:[ 1 ] lib in
  Alcotest.(check (list string)) "valid" [] (Check.validate nl);
  let sim = Simulator.create nl in
  Simulator.reset sim;
  let ffs =
    List.filter (fun i -> (Netlist.cell nl i).Cell.kind = Func.Dff) (Netlist.live_insts nl)
  in
  (* seed state 1 via the flip-flop driving s0 *)
  let ff0 =
    List.find
      (fun i ->
        match Netlist.output_net nl i with
        | Some q -> Netlist.net_name nl q = "s0"
        | None -> false)
      ffs
  in
  Simulator.set_ff_state sim ff0 Logic.T;
  Simulator.set_inputs sim [ ("din", Logic.F) ];
  let read () =
    Simulator.propagate sim;
    let outs = Simulator.output_values sim in
    List.fold_left
      (fun acc i ->
        match List.assoc (Printf.sprintf "crc%d" i) outs with
        | Logic.T -> acc lor (1 lsl i)
        | Logic.F | Logic.X -> acc)
      0 [ 0; 1; 2; 3 ]
  in
  let initial = read () in
  Alcotest.(check int) "seeded" 1 initial;
  let seen = Hashtbl.create 17 in
  let rec run i =
    if i > 16 then Alcotest.fail "no period found"
    else begin
      Simulator.clock_edge sim;
      let s = read () in
      if s = initial then i
      else begin
        Alcotest.(check bool) "nonzero states" true (s <> 0);
        if Hashtbl.mem seen s then Alcotest.fail "premature repeat";
        Hashtbl.add seen s ();
        run (i + 1)
      end
    end
  in
  Alcotest.(check int) "maximal period 15" 15 (run 1)

(* --- statistical leakage --- *)

let test_variation_stats () =
  let nl = Generators.multiplier ~name:"mv" ~bits:6 lib in
  let s = Smt_power.Variation.sample_standby ~samples:400 ~seed:5 nl in
  Alcotest.(check int) "samples" 400 s.Smt_power.Variation.samples;
  Alcotest.(check bool) "mean tracks deterministic" true
    (Float.abs (s.Smt_power.Variation.mean -. s.Smt_power.Variation.deterministic)
     /. s.Smt_power.Variation.deterministic
    < 0.05);
  Alcotest.(check bool) "percentiles ordered" true
    (s.Smt_power.Variation.p5 <= s.Smt_power.Variation.p50
    && s.Smt_power.Variation.p50 <= s.Smt_power.Variation.p95);
  Alcotest.(check bool) "spread exists" true (s.Smt_power.Variation.stddev > 0.0)

let test_variation_deterministic_by_seed () =
  let nl = Generators.c17 lib in
  let a = Smt_power.Variation.sample_standby ~seed:9 nl in
  let b = Smt_power.Variation.sample_standby ~seed:9 nl in
  Alcotest.(check (float 1e-12)) "same mean" a.Smt_power.Variation.mean
    b.Smt_power.Variation.mean

let test_variation_sigma_widens () =
  let nl = Generators.multiplier ~name:"mw" ~bits:5 lib in
  let narrow = Smt_power.Variation.sample_standby ~sigma:0.1 ~seed:3 nl in
  let wide = Smt_power.Variation.sample_standby ~sigma:0.6 ~seed:3 nl in
  Alcotest.(check bool) "bigger sigma, wider distribution" true
    (wide.Smt_power.Variation.stddev > narrow.Smt_power.Variation.stddev)

(* --- setup ECO --- *)

let test_fix_setup_repairs () =
  let b = Builder.create ~name:"su" ~lib () in
  let a = Builder.input b "a" in
  let x = Builder.not_ b a in
  for i = 0 to 19 do
    let o = Builder.output b (Printf.sprintf "o%d" i) in
    Builder.gate_into b Func.Buf [ x ] o
  done;
  let nl = Builder.netlist b in
  let tight = period_for nl 0.0 *. 0.85 in
  let cfg = Sta.config ~clock_period:tight () in
  let r = Smt_core.Eco.fix_setup cfg nl in
  Alcotest.(check bool) "was violated" true (r.Smt_core.Eco.wns_before < 0.0);
  Alcotest.(check bool) "upsizing happened" true (r.Smt_core.Eco.upsized > 0);
  Alcotest.(check bool) "repaired" true (r.Smt_core.Eco.wns_after >= 0.0)

let test_fix_setup_noop_when_met () =
  let nl = Generators.c17 lib in
  let cfg = Sta.config ~clock_period:(period_for nl 0.5) () in
  let r = Smt_core.Eco.fix_setup cfg nl in
  Alcotest.(check int) "no change" 0 r.Smt_core.Eco.upsized;
  Alcotest.(check (float 1e-9)) "wns untouched" r.Smt_core.Eco.wns_before
    r.Smt_core.Eco.wns_after

(* --- pipeline generator --- *)

let test_pipeline_structure () =
  let nl = Generators.pipeline ~name:"p3" ~stages:3 ~width:8 ~stage_depth:4 lib in
  Alcotest.(check (list string)) "valid" [] (Check.validate nl);
  let stats = Smt_netlist.Nl_stats.compute nl in
  (* (stages+1) register banks of `width` flip-flops *)
  Alcotest.(check int) "register banks" (4 * 8) stats.Smt_netlist.Nl_stats.sequential;
  (* stage timing: critical path ~ one stage of logic, much shorter than a
     flattened (3x deeper) comb block *)
  let flat = Generators.pipeline ~name:"p1" ~stages:1 ~width:8 ~stage_depth:12 lib in
  let crit n =
    let sta = Sta.analyze (Sta.config ~clock_period:1e6 ()) n in
    1e6 -. Sta.wns sta
  in
  Alcotest.(check bool) "pipelining shortens the critical path" true (crit nl < crit flat)

let () =
  Alcotest.run "smt_extensions"
    [
      ( "drive-strength",
        [
          Alcotest.test_case "variants exist" `Quick test_drive_variants_exist;
          Alcotest.test_case "linear scaling" `Quick test_drive_scaling;
          Alcotest.test_case "resize/restyle compose" `Quick test_resize_restyle_compose;
          Alcotest.test_case "MT variants sized" `Quick test_mt_variants_sized;
          Alcotest.test_case "upsize fixes timing" `Quick test_upsize_fixes_timing;
          Alcotest.test_case "downsize recovers area" `Quick test_downsize_recovers_area;
          Alcotest.test_case "flow knob" `Quick test_flow_gate_sizing_knob;
        ] );
      ( "incremental-sta",
        [
          Alcotest.test_case "matches full (vth swaps)" `Quick test_incremental_matches_full;
          Alcotest.test_case "matches full (resize)" `Quick test_incremental_resize;
          Alcotest.test_case "chained updates" `Quick test_incremental_chain;
        ] );
      ( "corners",
        [
          Alcotest.test_case "typical neutral" `Quick test_corner_typical_neutral;
          Alcotest.test_case "temperature monotone" `Quick test_corner_monotone_temperature;
          Alcotest.test_case "process" `Quick test_corner_process;
          Alcotest.test_case "leakage scaling" `Quick test_corner_leakage_scaling;
        ] );
      ( "wakeup",
        [
          Alcotest.test_case "scales with members" `Quick test_wakeup_scales_with_members;
          Alcotest.test_case "width helps" `Quick test_wakeup_wider_switch_faster;
          Alcotest.test_case "empty design" `Quick test_wakeup_empty;
        ] );
      ( "retention",
        [
          Alcotest.test_case "cell" `Quick test_retention_cell;
          Alcotest.test_case "conversion" `Quick test_retention_conversion;
          Alcotest.test_case "flow knob" `Quick test_retention_flow_knob;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "dead logic removal" `Quick test_dead_logic_removal;
          Alcotest.test_case "buffer collapse" `Quick test_buffer_collapse;
          Alcotest.test_case "preserves flow result" `Quick test_optimize_preserves_flow_result;
          Alcotest.test_case "infrastructure protected" `Quick test_infrastructure_protected;
        ] );
      ( "vcd",
        [
          Alcotest.test_case "output format" `Quick test_vcd_output;
          Alcotest.test_case "dedup & change-only" `Quick test_vcd_dedup_and_changes_only;
        ] );
      ( "generators",
        [
          Alcotest.test_case "kogge-stone arithmetic" `Quick test_kogge_stone_correct;
          Alcotest.test_case "prefix vs ripple depth" `Quick test_kogge_stone_shallower_than_ripple;
          Alcotest.test_case "crc maximal period" `Quick test_crc_period;
          Alcotest.test_case "pipeline structure" `Quick test_pipeline_structure;
        ] );
      ( "variation",
        [
          Alcotest.test_case "statistics" `Quick test_variation_stats;
          Alcotest.test_case "deterministic" `Quick test_variation_deterministic_by_seed;
          Alcotest.test_case "sigma widens" `Quick test_variation_sigma_widens;
        ] );
      ( "setup-eco",
        [
          Alcotest.test_case "repairs violations" `Quick test_fix_setup_repairs;
          Alcotest.test_case "noop when met" `Quick test_fix_setup_noop_when_met;
        ] );
    ]
