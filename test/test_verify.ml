(* The semantic standby verifier: lattice algebra, abstract transfer,
   waiver files, rule findings on hand-built pathologies, determinism,
   and the SARIF export. *)

module Netlist = Smt_netlist.Netlist
module Library = Smt_cell.Library
module Func = Smt_cell.Func
module Vth = Smt_cell.Vth
module Cell = Smt_cell.Cell
module Generators = Smt_circuits.Generators
module Suite = Smt_circuits.Suite
module Flow = Smt_core.Flow
module L = Smt_verify.Lattice
module Rules = Smt_verify.Rules
module Waiver = Smt_verify.Waiver
module Verify = Smt_verify.Verify
module Sarif = Smt_verify.Sarif
module J = Smt_obs.Obs_json

let lib = Library.default ()
let lv k = Library.variant lib k Vth.Low Vth.Plain
let mt k = Library.restyle lib (lv k) Vth.Low Vth.Mt_vgnd

let vv = Alcotest.testable (Fmt.of_to_string L.to_string) L.equal
let all_values = [ L.Zero; L.One; L.Held; L.Float; L.Top ]

(* --- lattice algebra --- *)

let test_join_algebra () =
  List.iter
    (fun a ->
      Alcotest.check vv "idempotent" a (L.join a a);
      Alcotest.check vv "top absorbs" L.Top (L.join a L.Top);
      List.iter
        (fun b ->
          Alcotest.check vv "commutative" (L.join a b) (L.join b a);
          Alcotest.(check bool) "a <= join a b" true (L.leq a (L.join a b));
          List.iter
            (fun c ->
              Alcotest.check vv "associative"
                (L.join a (L.join b c))
                (L.join (L.join a b) c))
            all_values)
        all_values)
    all_values

let test_join_cases () =
  Alcotest.check vv "0 v 1 = held" L.Held (L.join L.Zero L.One);
  Alcotest.check vv "0 v held = held" L.Held (L.join L.Zero L.Held);
  Alcotest.check vv "float v 1 = top" L.Top (L.join L.Float L.One);
  Alcotest.check vv "float v held = top" L.Top (L.join L.Float L.Held);
  Alcotest.check vv "float v float = float" L.Float (L.join L.Float L.Float)

let test_order () =
  Alcotest.(check bool) "0 <= held" true (L.leq L.Zero L.Held);
  Alcotest.(check bool) "1 <= held" true (L.leq L.One L.Held);
  Alcotest.(check bool) "held <= top" true (L.leq L.Held L.Top);
  Alcotest.(check bool) "float <= top" true (L.leq L.Float L.Top);
  Alcotest.(check bool) "float not <= held" false (L.leq L.Float L.Held);
  Alcotest.(check bool) "0 not <= 1" false (L.leq L.Zero L.One);
  List.iter
    (fun v ->
      Alcotest.(check bool) "defined xor may_float below top" true
        (v = L.Top || L.is_defined v <> L.may_float v))
    all_values

let test_transfer () =
  (* any possibly-floating input contaminates, even a controlling 0 *)
  Alcotest.check vv "nand(float,0) = top" L.Top (L.eval Func.Nand2 [| L.Float; L.Zero |]);
  Alcotest.check vv "inv(top) = top" L.Top (L.eval Func.Inv [| L.Top |]);
  (* otherwise exact three-valued evaluation with held as X *)
  Alcotest.check vv "nand(0,held) = 1" L.One (L.eval Func.Nand2 [| L.Zero; L.Held |]);
  Alcotest.check vv "nand(1,held) = held" L.Held (L.eval Func.Nand2 [| L.One; L.Held |]);
  Alcotest.check vv "and(0,held) = 0" L.Zero (L.eval Func.And2 [| L.Zero; L.Held |]);
  Alcotest.check vv "inv(0) = 1" L.One (L.eval Func.Inv [| L.Zero |]);
  Alcotest.check vv "inv(held) = held" L.Held (L.eval Func.Inv [| L.Held |])

let test_transfer_monotone () =
  (* brute-force monotonicity of a two-input transfer *)
  List.iter
    (fun a ->
      List.iter
        (fun a' ->
          if L.leq a a' then
            List.iter
              (fun b ->
                Alcotest.(check bool)
                  (Printf.sprintf "nand monotone %s<=%s at %s" (L.to_string a)
                     (L.to_string a') (L.to_string b))
                  true
                  (L.leq (L.eval Func.Nand2 [| a; b |]) (L.eval Func.Nand2 [| a'; b |])))
              all_values)
        all_values)
    all_values

let test_logic_bridge () =
  List.iter
    (fun v ->
      match L.to_logic v with
      | Some x -> Alcotest.check vv "roundtrip" v (L.of_logic x)
      | None -> Alcotest.(check bool) "only hazards drop out" true (L.may_float v))
    all_values

(* --- waiver files --- *)

let test_waiver_parse () =
  let src = "# comment\n\nuseless-holder net:dp_*\n* inst:sw_1\n" in
  match Waiver.parse src with
  | Error e -> Alcotest.fail e
  | Ok entries ->
    Alcotest.(check int) "two entries" 2 (List.length entries);
    let e1 = List.nth entries 0 in
    Alcotest.(check string) "rule" "useless-holder" e1.Waiver.w_rule;
    Alcotest.(check string) "glob" "net:dp_*" e1.Waiver.w_loc;
    Alcotest.(check int) "line number" 3 e1.Waiver.w_line

let test_waiver_rejects_unknown_rule () =
  match Waiver.parse "needs-coffee *\n" with
  | Ok _ -> Alcotest.fail "typo'd rule id accepted"
  | Error e ->
    Alcotest.(check bool) "names the line" true
      (String.length e > 0 && String.index_opt e '1' <> None)

let test_waiver_rejects_malformed () =
  match Waiver.parse "useless-holder\n" with
  | Ok _ -> Alcotest.fail "entry without a location accepted"
  | Error _ -> ()

let test_glob () =
  let m p s = Waiver.glob_match ~pattern:p s in
  Alcotest.(check bool) "star matches all" true (m "*" "net:anything");
  Alcotest.(check bool) "anchored prefix" true (m "net:dp_*" "net:dp_7");
  Alcotest.(check bool) "anchored, not substring" false (m "net:dp_*" "xnet:dp_7");
  Alcotest.(check bool) "suffix required" false (m "net:*_q" "net:a_q2");
  Alcotest.(check bool) "backtracking" true (m "a*b*c" "aXbYbZc");
  Alcotest.(check bool) "exact" true (m "inst:sw_1" "inst:sw_1");
  Alcotest.(check bool) "empty star run" true (m "a*b" "ab")

let finding rule loc =
  { Rules.rule; loc; mode = ""; message = "m"; witness = [] }

let test_waiver_apply () =
  let w =
    match Waiver.parse "useless-holder net:a*\n* net:b\n* net:a1\n" with
    | Ok w -> w
    | Error e -> Alcotest.fail e
  in
  let f1 = finding Rules.useless_holder "net:a1" in
  let f2 = finding Rules.useless_holder "net:b" in
  let f3 = finding Rules.float_into_awake "net:b" in
  let f4 = finding Rules.float_into_awake "net:c" in
  let kept, waived = Waiver.apply w [ f1; f2; f3; f4 ] in
  Alcotest.(check (list string)) "kept"
    [ "net:c" ]
    (List.map (fun f -> f.Rules.loc) kept);
  Alcotest.(check (list string)) "waived in order"
    [ "net:a1"; "net:b"; "net:b" ]
    (List.map (fun (f, _) -> f.Rules.loc) waived);
  (* f1 matches entry 1 (rule + glob) and entry 3 (wildcard): the first
     matching entry is the one recorded *)
  let _, e1 = List.hd waived in
  Alcotest.(check int) "first entry wins" 1 e1.Waiver.w_line;
  (* f2 matches only the wildcard on line 2 *)
  let _, e2 = List.nth waived 1 in
  Alcotest.(check int) "rule mismatch falls through" 2 e2.Waiver.w_line

(* --- hand-built pathologies, one per rule --- *)

let rule_ids r = List.map (fun f -> f.Rules.rule.Rules.id) r.Verify.findings

let base () =
  let nl = Netlist.create ~name:"lintcase" ~lib in
  let mte = Netlist.add_input nl "MTE" in
  let a = Netlist.add_input nl "a" in
  (nl, mte, a)

let gated_mt nl mte a ~out =
  let sw = Netlist.add_inst nl ~name:"sw0" (Library.switch lib ~width:8.0) [ ("MTE", mte) ] in
  let g = Netlist.add_inst nl ~name:"g0" (mt Func.Nand2) [ ("A", a); ("B", a); ("Z", out) ] in
  Netlist.set_vgnd_switch nl g (Some sw);
  sw

let test_float_into_awake () =
  let nl, mte, a = base () in
  let w = Netlist.add_net nl "w" in
  let z = Netlist.add_output nl "z" in
  ignore (gated_mt nl mte a ~out:w);
  ignore (Netlist.add_inst nl ~name:"r0" (lv Func.Inv) [ ("A", w); ("Z", z) ]);
  let r = Verify.analyze nl in
  Alcotest.check vv "w floats" L.Float (Option.get (Verify.value_of r "w"));
  let floats =
    List.filter (fun f -> f.Rules.rule.Rules.id = Rules.float_into_awake.Rules.id) r.Verify.findings
  in
  (match floats with
  | [ f ] ->
    Alcotest.(check string) "at the floating net" "net:w" f.Rules.loc;
    Alcotest.(check bool) "witness starts at the cut cell" true
      (List.exists (fun s -> String.length s >= 7 && String.sub s 0 7 = "inst:g0") f.Rules.witness)
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 float-into-awake, got %d" (List.length fs)));
  (* the PO computed from the float is a crowbar risk, not a float *)
  Alcotest.(check bool) "po crowbar flagged" true
    (List.exists
       (fun f -> f.Rules.rule.Rules.id = Rules.crowbar_risk.Rules.id && f.Rules.loc = "net:z")
       r.Verify.findings)

let test_holder_silences_float () =
  let nl, mte, a = base () in
  let w = Netlist.add_net nl "w" in
  let z = Netlist.add_output nl "z" in
  ignore (gated_mt nl mte a ~out:w);
  ignore (Netlist.add_inst nl ~name:"h0" (Library.holder lib) [ ("Z", w); ("MTE", mte) ]);
  ignore (Netlist.add_inst nl ~name:"r0" (lv Func.Inv) [ ("A", w); ("Z", z) ]);
  let r = Verify.analyze nl in
  Alcotest.check vv "w held" L.Held (Option.get (Verify.value_of r "w"));
  Alcotest.(check (list string)) "clean" [] (List.map Rules.to_string r.Verify.findings)

let test_useless_holder_never_floats () =
  let nl, mte, a = base () in
  ignore mte;
  let w = Netlist.add_net nl "w" in
  let z = Netlist.add_output nl "z" in
  ignore (Netlist.add_inst nl ~name:"d0" (lv Func.Inv) [ ("A", a); ("Z", w) ]);
  ignore (Netlist.add_inst nl ~name:"h0" (Library.holder lib) [ ("Z", w); ("MTE", mte) ]);
  ignore (Netlist.add_inst nl ~name:"r0" (lv Func.Inv) [ ("A", w); ("Z", z) ]);
  let r = Verify.analyze nl in
  Alcotest.(check (list string)) "one useless-holder, nothing else"
    [ Rules.useless_holder.Rules.id ]
    (rule_ids r);
  Alcotest.(check bool) "it is a warning" false (Rules.has_errors r.Verify.findings)

let test_useless_holder_mt_only_readers () =
  let nl, mte, a = base () in
  let w = Netlist.add_net nl "w" in
  let w2 = Netlist.add_output nl "w2" in
  let sw = gated_mt nl mte a ~out:w in
  ignore (Netlist.add_inst nl ~name:"h0" (Library.holder lib) [ ("Z", w); ("MTE", mte) ]);
  let g2 = Netlist.add_inst nl ~name:"g2" (mt Func.Inv) [ ("A", w); ("Z", w2) ] in
  Netlist.set_vgnd_switch nl g2 (Some sw);
  ignore (Netlist.add_inst nl ~name:"h2" (Library.holder lib) [ ("Z", w2); ("MTE", mte) ]);
  let r = Verify.analyze nl in
  let useless =
    List.filter (fun f -> f.Rules.rule.Rules.id = Rules.useless_holder.Rules.id) r.Verify.findings
  in
  Alcotest.(check (list string)) "only the MT-read net's holder"
    [ "net:w" ]
    (List.map (fun f -> f.Rules.loc) useless)

let test_mte_polarity () =
  let nl, mte, a = base () in
  let w = Netlist.add_net nl "w" in
  let z = Netlist.add_output nl "z" in
  let mte_n = Netlist.add_net nl "mte_n" in
  ignore (Netlist.add_inst nl ~name:"i0" (lv Func.Inv) [ ("A", mte); ("Z", mte_n) ]);
  let sw = Netlist.add_inst nl ~name:"sw0" (Library.switch lib ~width:8.0) [ ("MTE", mte_n) ] in
  let g = Netlist.add_inst nl ~name:"g0" (mt Func.Nand2) [ ("A", a); ("B", a); ("Z", w) ] in
  Netlist.set_vgnd_switch nl g (Some sw);
  ignore (Netlist.add_inst nl ~name:"r0" (lv Func.Inv) [ ("A", w); ("Z", z) ]);
  let r = Verify.analyze nl in
  Alcotest.(check (list string)) "exactly the polarity error"
    [ Rules.mte_polarity.Rules.id ]
    (rule_ids r);
  let f = List.hd r.Verify.findings in
  Alcotest.(check string) "at the switch" "inst:sw0" f.Rules.loc;
  Alcotest.(check bool) "witness traces from MTE" true
    (List.exists
       (fun s -> String.length s >= 7 && String.sub s 0 7 = "net:MTE")
       f.Rules.witness);
  Alcotest.(check bool) "stuck-on member evaluates, no float" true
    (L.is_defined (Option.get (Verify.value_of r "w")))

let test_mte_undetermined () =
  let nl, _mte, a = base () in
  let e = Netlist.add_input nl "mode" in
  let w = Netlist.add_net nl "w" in
  let z = Netlist.add_output nl "z" in
  let sw = Netlist.add_inst nl ~name:"sw0" (Library.switch lib ~width:8.0) [ ("MTE", e) ] in
  let g = Netlist.add_inst nl ~name:"g0" (mt Func.Nand2) [ ("A", a); ("B", a); ("Z", w) ] in
  Netlist.set_vgnd_switch nl g (Some sw);
  ignore (Netlist.add_inst nl ~name:"r0" (lv Func.Inv) [ ("A", w); ("Z", z) ]);
  let r = Verify.analyze nl in
  Alcotest.(check bool) "undetermined enable flagged" true
    (List.exists
       (fun f -> f.Rules.rule.Rules.id = Rules.mte_undetermined.Rules.id && f.Rules.loc = "inst:sw0")
       r.Verify.findings);
  Alcotest.check vv "member output is top" L.Top (Option.get (Verify.value_of r "w"))

let test_retention_input_float () =
  let nl, mte, a = base () in
  let clk = Netlist.add_input ~clock:true nl "clk" in
  let w = Netlist.add_net nl "w" in
  let q = Netlist.add_output nl "q" in
  ignore (gated_mt nl mte a ~out:w);
  ignore
    (Netlist.add_inst nl ~name:"ff0" (Library.retention_dff lib)
       [ ("D", w); ("CK", clk); ("Q", q) ]);
  let r = Verify.analyze nl in
  Alcotest.(check bool) "retention D float flagged" true
    (List.exists
       (fun f ->
         f.Rules.rule.Rules.id = Rules.retention_input_float.Rules.id
         && f.Rules.loc = "inst:ff0")
       r.Verify.findings)

let test_crowbar_instance () =
  let nl, _mte, a = base () in
  let e = Netlist.add_input nl "mode" in
  let w = Netlist.add_net nl "w" in
  let z = Netlist.add_output nl "z" in
  let sw = Netlist.add_inst nl ~name:"sw0" (Library.switch lib ~width:8.0) [ ("MTE", e) ] in
  let g = Netlist.add_inst nl ~name:"g0" (mt Func.Inv) [ ("A", a); ("Z", w) ] in
  Netlist.set_vgnd_switch nl g (Some sw);
  ignore (Netlist.add_inst nl ~name:"r0" (lv Func.Inv) [ ("A", w); ("Z", z) ]);
  let r = Verify.analyze nl in
  Alcotest.(check bool) "powered gate on a top net flagged" true
    (List.exists
       (fun f -> f.Rules.rule.Rules.id = Rules.crowbar_risk.Rules.id && f.Rules.loc = "inst:r0")
       r.Verify.findings)

let test_cycle_widens () =
  let nl = Netlist.create ~name:"loop" ~lib in
  let a = Netlist.add_net nl "a" in
  let b = Netlist.add_net nl "b" in
  ignore (Netlist.add_inst nl ~name:"i1" (lv Func.Inv) [ ("A", a); ("Z", b) ]);
  ignore (Netlist.add_inst nl ~name:"i2" (lv Func.Inv) [ ("A", b); ("Z", a) ]);
  let r = Verify.analyze nl in
  Alcotest.(check int) "both nets widened" 2 r.Verify.widened;
  Alcotest.check vv "a is top" L.Top (Option.get (Verify.value_of r "a"));
  Alcotest.check vv "b is top" L.Top (Option.get (Verify.value_of r "b"))

let test_clock_parked_and_ff_held () =
  let nl = Netlist.create ~name:"seq" ~lib in
  let clk = Netlist.add_input ~clock:true nl "clk" in
  let d = Netlist.add_input nl "d" in
  let q = Netlist.add_output nl "q" in
  ignore (Netlist.add_inst nl ~name:"ff0" (lv Func.Dff) [ ("D", d); ("CK", clk); ("Q", q) ]);
  let r = Verify.analyze nl in
  Alcotest.check vv "clock parked low" L.Zero (Option.get (Verify.value_of r "clk"));
  Alcotest.check vv "flip-flop output held" L.Held (Option.get (Verify.value_of r "q"));
  Alcotest.(check (list string)) "clean" [] (List.map Rules.to_string r.Verify.findings)

(* --- determinism & flow product --- *)

let test_analyze_deterministic () =
  let nl = Generators.multiplier ~name:"det" ~bits:4 lib in
  ignore (Flow.run ~options:{ Flow.default_options with Flow.activity_cycles = 32 } Flow.Improved_smt nl);
  let s r = List.map Rules.to_string r.Verify.findings in
  let r1 = Verify.analyze nl and r2 = Verify.analyze nl in
  Alcotest.(check (list string)) "findings stable" (s r1) (s r2);
  Alcotest.(check int) "transfer count stable" r1.Verify.transfers r2.Verify.transfers;
  Alcotest.(check bool) "values stable" true (r1.Verify.values = r2.Verify.values)

let test_flow_product_clean () =
  let nl = Generators.counter ~name:"fpc" ~bits:6 lib in
  ignore (Flow.run ~options:{ Flow.default_options with Flow.activity_cycles = 32 } Flow.Improved_smt nl);
  let r = Verify.analyze nl in
  Alcotest.(check (list string)) "improved flow product lint-clean" []
    (List.map Rules.to_string r.Verify.findings)

(* --- power domains: mode vectors, crossing rules, incremental update --- *)

let starts p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

let inst_pfx nl p =
  let r = ref None in
  Netlist.iter_insts nl (fun iid ->
      if !r = None && starts p (Netlist.inst_name nl iid) then r := Some iid);
  match !r with
  | Some i -> i
  | None -> Alcotest.fail ("no instance with prefix " ^ p)

let net_pfx nl p =
  let r = ref None in
  Netlist.iter_nets nl (fun nid ->
      if !r = None && starts p (Netlist.net_name nl nid) then r := Some nid);
  match !r with
  | Some n -> n
  | None -> Alcotest.fail ("no net with prefix " ^ p)

let domain_rules =
  [
    Rules.cross_domain_float; Rules.missing_isolation;
    Rules.isolation_enable_off_domain; Rules.always_on_path;
  ]

(* Each pathology must be caught by its rule and by no other domain rule:
   the four crossing rules partition the boundary failure space. *)
let check_only_domain_rule r expected =
  let ids = rule_ids r in
  Alcotest.(check bool)
    (expected.Rules.id ^ " fires")
    true
    (List.mem expected.Rules.id ids);
  List.iter
    (fun (other : Rules.rule) ->
      if other.Rules.id <> expected.Rules.id then
        Alcotest.(check bool) (other.Rules.id ^ " stays silent") false
          (List.mem other.Rules.id ids))
    domain_rules

let test_multi_domain_clean () =
  List.iter
    (fun domains ->
      let nl = Suite.multi_domain ~domains ~name:"mdc" lib in
      let r = Verify.analyze nl in
      Alcotest.(check (list string))
        (Printf.sprintf "domains=%d lint-clean" domains)
        []
        (List.map Rules.to_string r.Verify.findings);
      Alcotest.(check int)
        (Printf.sprintf "domains=%d mode count" domains)
        ((1 lsl domains) - 1)
        (List.length r.Verify.modes))
    [ 2; 3; 4 ]

let test_legacy_single_mode () =
  (* No declared domains: exactly the one unnamed legacy mode. *)
  let nl = Generators.counter ~name:"leg" ~bits:4 lib in
  let r = Verify.analyze nl in
  Alcotest.(check (list string)) "single unnamed mode" [ "" ] r.Verify.modes

let test_pathology_cross_domain_float () =
  (* The clamp is present and owned by the right domain, but its enable is
     computed by that domain's own gated logic: in standby the enable is
     indeterminate, so the crossing may float into the awake reader.  Only
     cross-domain-float can see this — the clamp exists (not
     missing-isolation) and belongs to the right domain (not
     isolation-enable). *)
  let nl = Suite.multi_domain ~domains:2 ~name:"p1" lib in
  let iso = inst_pfx nl "iso_a" in
  let src = ref None in
  Netlist.iter_nets nl (fun nid ->
      if !src = None then
        match Netlist.driver nl nid with
        | Some p
          when Netlist.inst_domain nl p.Netlist.inst = Some "a"
               && Cell.is_mt (Netlist.cell nl p.Netlist.inst)
               && not (starts "xn_" (Netlist.net_name nl nid)) ->
          src := Some nid
        | _ -> ());
  Netlist.connect nl iso "MTE" (Option.get !src);
  let r = Verify.analyze nl in
  check_only_domain_rule r Rules.cross_domain_float;
  let f =
    List.find
      (fun f -> f.Rules.rule.Rules.id = Rules.cross_domain_float.Rules.id)
      r.Verify.findings
  in
  Alcotest.(check bool) "observed in a sleep mode" true (starts "sleep{" f.Rules.mode);
  Alcotest.(check bool) "witness present" true (f.Rules.witness <> [])

let test_pathology_missing_isolation () =
  let nl = Suite.multi_domain ~domains:2 ~name:"p2" lib in
  Netlist.remove_inst nl (inst_pfx nl "iso_a");
  let r = Verify.analyze nl in
  check_only_domain_rule r Rules.missing_isolation;
  (* the deletion is invisible to the structural checker: the net's sinks
     are all MT cells, so no structural holder rule applies *)
  Alcotest.(check (list string)) "DRC blind to the deletion" []
    (List.map Smt_check.Violation.to_string
       (Smt_check.Violation.errors
          (Smt_check.Drc.check ~expect_buffered_mte:false nl)))

let test_pathology_isolation_enable () =
  let nl = Suite.multi_domain ~domains:2 ~name:"p3" lib in
  Netlist.connect nl (inst_pfx nl "iso_a") "MTE" (net_pfx nl "mte_b");
  let r = Verify.analyze nl in
  check_only_domain_rule r Rules.isolation_enable_off_domain;
  (* the clamp misbehaves in both modes that park domain a; the report
     carries it once, attributed to the shallowest mode *)
  let fs =
    List.filter
      (fun f -> f.Rules.rule.Rules.id = Rules.isolation_enable_off_domain.Rules.id)
      r.Verify.findings
  in
  (match fs with
  | [ f ] -> Alcotest.(check string) "shallowest mode wins" "sleep{a}" f.Rules.mode
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs)))

let test_pathology_always_on_path () =
  (* A properly clamped MT gate inside domain a that both reads from and
     is read by always-on/foreign logic: no float escapes (the clamp
     works), but the path itself dies whenever domain a sleeps. *)
  let nl = Suite.multi_domain ~domains:2 ~name:"p4" lib in
  let pi = Netlist.add_input nl "side" in
  let anet = Netlist.fresh_net nl "anet" in
  ignore
    (Netlist.add_inst nl ~name:"ag" (lv Func.Buf) [ ("A", pi); ("Z", anet) ]);
  let dff_q dom =
    let r = ref None in
    Netlist.iter_insts nl (fun iid ->
        if !r = None
           && (Netlist.cell nl iid).Cell.kind = Func.Dff
           && Netlist.inst_domain nl iid = Some dom
        then r := Netlist.output_net nl iid);
    Option.get !r
  in
  let tnet = Netlist.fresh_net nl "tnet" in
  let tg =
    Netlist.add_inst nl ~name:"tg" (mt Func.Nand2)
      [ ("A", anet); ("B", dff_q "a"); ("Z", tnet) ]
  in
  Netlist.set_inst_domain nl tg (Some "a");
  Netlist.set_vgnd_switch nl tg (Some (inst_pfx nl "sw_a"));
  ignore
    (Netlist.add_inst nl ~name:"tg_hold" (Library.holder lib)
       [ ("MTE", net_pfx nl "mte_a"); ("Z", tnet) ]);
  let rnet = Netlist.fresh_net nl "rnet2" in
  let rg2 =
    Netlist.add_inst nl ~name:"rg2" (mt Func.Nand2)
      [ ("A", tnet); ("B", dff_q "b"); ("Z", rnet) ]
  in
  Netlist.set_inst_domain nl rg2 (Some "b");
  Netlist.set_vgnd_switch nl rg2 (Some (inst_pfx nl "sw_b"));
  ignore
    (Netlist.add_inst nl ~name:"rg2_hold" (Library.holder lib)
       [ ("MTE", net_pfx nl "mte_b"); ("Z", rnet) ]);
  let qn = Netlist.fresh_net nl "rq2" in
  let dff =
    Netlist.add_inst nl ~name:"rdff2" (lv Func.Dff)
      [ ("D", rnet); ("CK", Option.get (Netlist.clock_net nl)); ("Q", qn) ]
  in
  Netlist.set_inst_domain nl dff (Some "b");
  Netlist.mark_output nl qn;
  let r = Verify.analyze nl in
  check_only_domain_rule r Rules.always_on_path;
  Alcotest.(check bool) "it is a warning, not an error" false
    (Rules.has_errors r.Verify.findings)

let test_jobs_determinism () =
  let nl = Suite.multi_domain ~domains:3 ~name:"jd" lib in
  Netlist.connect nl (inst_pfx nl "iso_a") "MTE" (net_pfx nl "mte_b");
  let r1 = Verify.analyze ~jobs:1 nl in
  let r4 = Verify.analyze ~jobs:4 nl in
  Alcotest.(check (list string)) "findings byte-identical across job counts"
    (List.map Rules.to_string r1.Verify.findings)
    (List.map Rules.to_string r4.Verify.findings);
  Alcotest.(check bool) "values identical" true (r1.Verify.values = r4.Verify.values);
  Alcotest.(check (list string)) "mode list identical" r1.Verify.modes r4.Verify.modes;
  let render r =
    Sarif.render
      [ { Sarif.wl_name = "jd/raw"; wl_findings = r.Verify.findings; wl_waived = [] } ]
  in
  Alcotest.(check string) "SARIF byte-identical" (render r1) (render r4)

let test_incremental_faster_on_small_delta () =
  let nl = Suite.multi_domain ~domains:3 ~name:"spd" lib in
  let session, r0 = Verify.start nl in
  Alcotest.(check (list string)) "baseline clean" []
    (List.map Rules.to_string r0.Verify.findings);
  (* single-cell ECO: swap one gate *)
  let victim =
    let r = ref None in
    Netlist.iter_insts nl (fun iid ->
        if !r = None && (Netlist.cell nl iid).Cell.kind = Func.Nand2
           && Netlist.inst_domain nl iid = Some "b"
        then r := Some iid);
    Option.get !r
  in
  let c = Netlist.cell nl victim in
  Netlist.replace_cell nl victim
    (Library.variant ~drive:c.Cell.drive lib Func.Nor2 c.Cell.vth c.Cell.style);
  let ru = Verify.update session in
  let rf = Verify.analyze nl in
  Alcotest.(check (list string)) "identical findings"
    (List.map Rules.to_string rf.Verify.findings)
    (List.map Rules.to_string ru.Verify.findings);
  Alcotest.(check bool) "identical values" true (ru.Verify.values = rf.Verify.values);
  Alcotest.(check bool)
    (Printf.sprintf "re-seeded cone does less work (%d < %d / 2)" ru.Verify.transfers
       rf.Verify.transfers)
    true
    (ru.Verify.transfers * 2 < rf.Verify.transfers)

let test_incremental_domain_change_restarts () =
  (* Declaring a new domain changes the mode vector: the session must
     fall back to a transparent full restart and still agree with a
     from-scratch analysis. *)
  let nl = Suite.multi_domain ~domains:2 ~name:"dcr" lib in
  let session, r0 = Verify.start nl in
  Alcotest.(check int) "3 modes initially" 3 (List.length r0.Verify.modes);
  let e = Netlist.add_input nl "mte_c" in
  Netlist.add_domain nl ~name:"c" ~mte:(Some e);
  let ru = Verify.update session in
  let rf = Verify.analyze nl in
  Alcotest.(check int) "7 modes after the new domain" 7 (List.length ru.Verify.modes);
  Alcotest.(check (list string)) "restart agrees with from-scratch"
    (List.map Rules.to_string rf.Verify.findings)
    (List.map Rules.to_string ru.Verify.findings);
  Alcotest.(check bool) "values agree" true (ru.Verify.values = rf.Verify.values)

(* --- rule catalog golden snapshot --- *)

let test_rule_catalog_golden () =
  (* Stable ids and severities are the waiver/baseline contract: changing
     any line here invalidates users' waiver files and SARIF baselines,
     so the change must be deliberate. *)
  let expected =
    [
      "error float-into-awake";
      "warning crowbar-risk";
      "warning useless-holder";
      "error mte-polarity";
      "error mte-undetermined";
      "error retention-input-float";
      "error cross-domain-float-into-awake";
      "error missing-isolation-at-boundary";
      "error isolation-enable-from-off-domain";
      "warning always-on-path-through-off-domain";
    ]
  in
  Alcotest.(check (list string)) "catalog ids and severities frozen" expected
    (List.map
       (fun (r : Rules.rule) -> Rules.severity_name r.Rules.severity ^ " " ^ r.Rules.id)
       Rules.all);
  List.iter
    (fun (r : Rules.rule) ->
      Alcotest.(check bool) (r.Rules.id ^ " has a summary") true
        (String.length r.Rules.summary > 10);
      Alcotest.(check bool) (r.Rules.id ^ " findable") true (Rules.find r.Rules.id = Some r))
    Rules.all

(* --- waiver expiry --- *)

let test_waiver_expiry_parse () =
  match Waiver.parse "useless-holder net:a* expires=2026-12-31\n" with
  | Error e -> Alcotest.fail e
  | Ok [ e ] ->
    Alcotest.(check bool) "date parsed" true (e.Waiver.w_expires = Some (2026, 12, 31))
  | Ok _ -> Alcotest.fail "expected one entry"

let test_waiver_expiry_rejects_bad_date () =
  List.iter
    (fun src ->
      match Waiver.parse src with
      | Ok _ -> Alcotest.fail ("bad date accepted: " ^ src)
      | Error _ -> ())
    [
      "useless-holder * expires=tomorrow\n";
      "useless-holder * expires=2026-13-01\n";
      "useless-holder * expires=26-1-1\n";
      "useless-holder * frobnicate=1\n";
    ]

let test_waiver_expiry_apply () =
  let w =
    match Waiver.parse "useless-holder net:a* expires=2026-06-30\n* net:b\n" with
    | Ok w -> w
    | Error e -> Alcotest.fail e
  in
  let f1 = finding Rules.useless_holder "net:a1" in
  let f2 = finding Rules.useless_holder "net:b" in
  (* on the expiry day the waiver still holds *)
  let kept, waived = Waiver.apply ~today:(2026, 6, 30) w [ f1; f2 ] in
  Alcotest.(check int) "valid through the expiry date" 0 (List.length kept);
  Alcotest.(check int) "both waived" 2 (List.length waived);
  (* one day later the dated entry stops suppressing *)
  let kept, waived = Waiver.apply ~today:(2026, 7, 1) w [ f1; f2 ] in
  Alcotest.(check (list string)) "expired entry no longer suppresses"
    [ "net:a1" ]
    (List.map (fun f -> f.Rules.loc) kept);
  Alcotest.(check int) "undated entry still works" 1 (List.length waived);
  (* without ~today nothing expires *)
  let kept, _ = Waiver.apply w [ f1; f2 ] in
  Alcotest.(check int) "no clock, no expiry" 0 (List.length kept)

(* --- SARIF export --- *)

let mem path doc =
  List.fold_left
    (fun acc k -> match acc with Some d -> J.member k d | None -> None)
    (Some doc) path

let nth_arr = function Some (J.Arr xs) -> xs | _ -> Alcotest.fail "expected array"

let test_sarif_document () =
  let wl =
    {
      Sarif.wl_name = "c/imp";
      wl_findings = [ finding Rules.float_into_awake "net:w" ];
      wl_waived =
        [
          ( finding Rules.useless_holder "net:h",
            { Waiver.w_rule = "useless-holder"; w_loc = "net:h"; w_expires = None; w_line = 4 } );
        ];
    }
  in
  let doc = J.parse_exn (Sarif.render [ wl ]) in
  Alcotest.(check (option string)) "version" (Some "2.1.0")
    (Option.bind (mem [ "version" ] doc) J.to_str);
  let runs = nth_arr (mem [ "runs" ] doc) in
  Alcotest.(check int) "one run" 1 (List.length runs);
  let run = List.hd runs in
  let rules = nth_arr (mem [ "tool"; "driver"; "rules" ] run) in
  Alcotest.(check int) "whole catalog exported" (List.length Rules.all) (List.length rules);
  Alcotest.(check (list (option string)))
    "rule ids in catalog order"
    (List.map (fun r -> Some r.Rules.id) Rules.all)
    (List.map (fun r -> Option.bind (J.member "id" r) J.to_str) rules);
  let results = nth_arr (mem [ "results" ] run) in
  Alcotest.(check int) "finding + waived finding" 2 (List.length results);
  let r0 = List.nth results 0 and r1 = List.nth results 1 in
  Alcotest.(check (option string)) "ruleId" (Some "float-into-awake")
    (Option.bind (mem [ "ruleId" ] r0) J.to_str);
  let loc0 = List.hd (nth_arr (mem [ "locations" ] r0)) in
  let fqn = List.hd (nth_arr (mem [ "logicalLocations" ] loc0)) in
  Alcotest.(check (option string)) "workload-qualified location" (Some "c/imp/net:w")
    (Option.bind (mem [ "fullyQualifiedName" ] fqn) J.to_str);
  Alcotest.(check bool) "live finding unsuppressed" true (mem [ "suppressions" ] r0 = None);
  let sup = List.hd (nth_arr (mem [ "suppressions" ] r1)) in
  Alcotest.(check (option string)) "waiver recorded" (Some "external")
    (Option.bind (mem [ "kind" ] sup) J.to_str)

let test_sarif_mode_location () =
  let f = { (finding Rules.cross_domain_float "net:x") with Rules.mode = "sleep{a}" } in
  let wl = { Sarif.wl_name = "c/raw"; wl_findings = [ f; finding Rules.useless_holder "net:y" ]; wl_waived = [] } in
  let doc = J.parse_exn (Sarif.render [ wl ]) in
  let results = nth_arr (mem [ "runs" ] doc |> fun rs -> mem [ "results" ] (List.hd (nth_arr rs))) in
  let lls r = nth_arr (mem [ "logicalLocations" ] (List.hd (nth_arr (mem [ "locations" ] r)))) in
  (* finding observed in a mode: element location plus a namespace
     location naming the mode *)
  let moded = lls (List.nth results 0) in
  Alcotest.(check int) "two logical locations" 2 (List.length moded);
  Alcotest.(check (option string)) "element first" (Some "c/raw/net:x")
    (Option.bind (mem [ "fullyQualifiedName" ] (List.nth moded 0)) J.to_str);
  Alcotest.(check (option string)) "mode namespace second" (Some "c/raw/mode/sleep{a}")
    (Option.bind (mem [ "fullyQualifiedName" ] (List.nth moded 1)) J.to_str);
  Alcotest.(check (option string)) "namespace kind" (Some "namespace")
    (Option.bind (mem [ "kind" ] (List.nth moded 1)) J.to_str);
  (* legacy finding: exactly one logical location, as before *)
  Alcotest.(check int) "legacy finding unchanged" 1 (List.length (lls (List.nth results 1)))

let test_sarif_deterministic () =
  let nl = Generators.multiplier ~name:"sd" ~bits:4 lib in
  ignore (Flow.run ~options:{ Flow.default_options with Flow.activity_cycles = 32 } Flow.Improved_smt nl);
  let wl () =
    let r = Verify.analyze nl in
    { Sarif.wl_name = "sd/improved"; wl_findings = r.Verify.findings; wl_waived = [] }
  in
  Alcotest.(check string) "byte-identical" (Sarif.render [ wl () ]) (Sarif.render [ wl () ])

let () =
  Alcotest.run "smt_verify"
    [
      ( "lattice",
        [
          Alcotest.test_case "join algebra" `Quick test_join_algebra;
          Alcotest.test_case "join cases" `Quick test_join_cases;
          Alcotest.test_case "order" `Quick test_order;
          Alcotest.test_case "transfer" `Quick test_transfer;
          Alcotest.test_case "transfer monotone" `Quick test_transfer_monotone;
          Alcotest.test_case "logic bridge" `Quick test_logic_bridge;
        ] );
      ( "waivers",
        [
          Alcotest.test_case "parse" `Quick test_waiver_parse;
          Alcotest.test_case "unknown rule rejected" `Quick test_waiver_rejects_unknown_rule;
          Alcotest.test_case "malformed rejected" `Quick test_waiver_rejects_malformed;
          Alcotest.test_case "glob" `Quick test_glob;
          Alcotest.test_case "apply" `Quick test_waiver_apply;
        ] );
      ( "rules",
        [
          Alcotest.test_case "float into awake" `Quick test_float_into_awake;
          Alcotest.test_case "holder silences float" `Quick test_holder_silences_float;
          Alcotest.test_case "useless holder (never floats)" `Quick test_useless_holder_never_floats;
          Alcotest.test_case "useless holder (MT-only readers)" `Quick test_useless_holder_mt_only_readers;
          Alcotest.test_case "mte polarity" `Quick test_mte_polarity;
          Alcotest.test_case "mte undetermined" `Quick test_mte_undetermined;
          Alcotest.test_case "retention input float" `Quick test_retention_input_float;
          Alcotest.test_case "crowbar instance" `Quick test_crowbar_instance;
          Alcotest.test_case "cycle widens to top" `Quick test_cycle_widens;
          Alcotest.test_case "clock parked, ff held" `Quick test_clock_parked_and_ff_held;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "analyze deterministic" `Quick test_analyze_deterministic;
          Alcotest.test_case "flow product clean" `Quick test_flow_product_clean;
          Alcotest.test_case "jobs 1 vs 4 byte-identical" `Quick test_jobs_determinism;
        ] );
      ( "domains",
        [
          Alcotest.test_case "multi-domain suite clean in all modes" `Quick
            test_multi_domain_clean;
          Alcotest.test_case "no domains, single legacy mode" `Quick test_legacy_single_mode;
          Alcotest.test_case "pathology: cross-domain float" `Quick
            test_pathology_cross_domain_float;
          Alcotest.test_case "pathology: missing isolation" `Quick
            test_pathology_missing_isolation;
          Alcotest.test_case "pathology: isolation enable off-domain" `Quick
            test_pathology_isolation_enable;
          Alcotest.test_case "pathology: always-on path" `Quick
            test_pathology_always_on_path;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "small delta re-verifies the cone only" `Quick
            test_incremental_faster_on_small_delta;
          Alcotest.test_case "domain change restarts transparently" `Quick
            test_incremental_domain_change_restarts;
        ] );
      ( "catalog",
        [ Alcotest.test_case "rule catalog golden" `Quick test_rule_catalog_golden ] );
      ( "expiry",
        [
          Alcotest.test_case "expires= parsed" `Quick test_waiver_expiry_parse;
          Alcotest.test_case "bad dates rejected" `Quick test_waiver_expiry_rejects_bad_date;
          Alcotest.test_case "apply honours today" `Quick test_waiver_expiry_apply;
        ] );
      ( "sarif",
        [
          Alcotest.test_case "document shape" `Quick test_sarif_document;
          Alcotest.test_case "mode logical location" `Quick test_sarif_mode_location;
          Alcotest.test_case "render deterministic" `Quick test_sarif_deterministic;
        ] );
    ]
