module Netlist = Smt_netlist.Netlist
module Builder = Smt_netlist.Builder
module Check = Smt_check.Drc
module Nl_stats = Smt_netlist.Nl_stats
module Writer = Smt_netlist.Writer
module Parser = Smt_netlist.Parser
module Clone = Smt_netlist.Clone
module Func = Smt_cell.Func
module Vth = Smt_cell.Vth
module Cell = Smt_cell.Cell
module Library = Smt_cell.Library

let lib = Library.default ()
let lv k = Library.variant lib k Vth.Low Vth.Plain

let fresh name = Netlist.create ~name ~lib

(* --- construction basics --- *)

let test_add_net_and_ports () =
  let nl = fresh "t" in
  let a = Netlist.add_input nl "a" in
  let z = Netlist.add_output nl "z" in
  let w = Netlist.add_net nl "w" in
  Alcotest.(check int) "3 nets" 3 (Netlist.net_count nl);
  Alcotest.(check bool) "a is pi" true (Netlist.is_pi nl a);
  Alcotest.(check bool) "z is po" true (Netlist.is_po nl z);
  Alcotest.(check bool) "w neither" false (Netlist.is_pi nl w || Netlist.is_po nl w);
  Alcotest.(check (option int)) "find" (Some w) (Netlist.find_net nl "w");
  Alcotest.(check string) "name" "w" (Netlist.net_name nl w)

let test_duplicate_net_rejected () =
  let nl = fresh "t" in
  ignore (Netlist.add_net nl "x");
  Alcotest.(check bool) "dup raises" true
    (try
       ignore (Netlist.add_net nl "x");
       false
     with Invalid_argument _ -> true)

let test_clock_marking () =
  let nl = fresh "t" in
  let clk = Netlist.add_input ~clock:true nl "clk" in
  Alcotest.(check bool) "clock flagged" true (Netlist.is_clock_net nl clk);
  Alcotest.(check (option int)) "clock_net" (Some clk) (Netlist.clock_net nl);
  let other = Netlist.add_net nl "late" in
  Netlist.mark_clock nl other;
  Alcotest.(check bool) "late marking" true (Netlist.is_clock_net nl other);
  Alcotest.(check (option int)) "root clock unchanged" (Some clk) (Netlist.clock_net nl)

let test_add_inst_connectivity () =
  let nl = fresh "t" in
  let a = Netlist.add_input nl "a" in
  let b = Netlist.add_input nl "b" in
  let z = Netlist.add_output nl "z" in
  let g = Netlist.add_inst nl ~name:"g1" (lv Func.Nand2) [ ("A", a); ("B", b); ("Z", z) ] in
  (match Netlist.driver nl z with
  | Some p ->
    Alcotest.(check int) "driver inst" g p.Netlist.inst;
    Alcotest.(check string) "driver pin" "Z" p.Netlist.pin_name
  | None -> Alcotest.fail "z undriven");
  Alcotest.(check int) "a has one sink" 1 (List.length (Netlist.sinks nl a));
  Alcotest.(check (option int)) "pin A" (Some a) (Netlist.pin_net nl g "A");
  Alcotest.(check (option int)) "output net" (Some z) (Netlist.output_net nl g)

let test_multiple_driver_rejected () =
  let nl = fresh "t" in
  let a = Netlist.add_input nl "a" in
  let z = Netlist.add_output nl "z" in
  ignore (Netlist.add_inst nl ~name:"g1" (lv Func.Inv) [ ("A", a); ("Z", z) ]);
  Alcotest.(check bool) "second driver raises" true
    (try
       ignore (Netlist.add_inst nl ~name:"g2" (lv Func.Inv) [ ("A", a); ("Z", z) ]);
       false
     with Invalid_argument _ -> true)

let test_driving_pi_rejected () =
  let nl = fresh "t" in
  let a = Netlist.add_input nl "a" in
  Alcotest.(check bool) "driving a PI raises" true
    (try
       ignore (Netlist.add_inst nl ~name:"g" (lv Func.Inv) [ ("A", a); ("Z", a) ]);
       false
     with Invalid_argument _ -> true)

let test_unknown_pin_rejected () =
  let nl = fresh "t" in
  let a = Netlist.add_input nl "a" in
  Alcotest.(check bool) "bad pin raises" true
    (try
       ignore (Netlist.add_inst nl ~name:"g" (lv Func.Inv) [ ("Q", a) ]);
       false
     with Invalid_argument _ -> true)

let test_connect_disconnect () =
  let nl = fresh "t" in
  let a = Netlist.add_input nl "a" in
  let b = Netlist.add_input nl "b" in
  let z = Netlist.add_output nl "z" in
  let g = Netlist.add_inst nl ~name:"g" (lv Func.Inv) [ ("A", a); ("Z", z) ] in
  Netlist.connect nl g "A" b;
  Alcotest.(check (option int)) "moved to b" (Some b) (Netlist.pin_net nl g "A");
  Alcotest.(check int) "a has no sinks" 0 (List.length (Netlist.sinks nl a));
  Netlist.disconnect nl g "A";
  Alcotest.(check (option int)) "gone" None (Netlist.pin_net nl g "A");
  Alcotest.(check int) "b freed" 0 (List.length (Netlist.sinks nl b))

let test_move_sink () =
  let nl = fresh "t" in
  let a = Netlist.add_input nl "a" in
  let b = Netlist.add_net nl "b" in
  let z = Netlist.add_output nl "z" in
  let g = Netlist.add_inst nl ~name:"g" (lv Func.Inv) [ ("A", a); ("Z", z) ] in
  let pin = { Netlist.inst = g; Netlist.pin_name = "A" } in
  Netlist.move_sink nl ~from_net:a pin ~to_net:b;
  Alcotest.(check (option int)) "now on b" (Some b) (Netlist.pin_net nl g "A");
  Alcotest.(check bool) "bad move raises" true
    (try
       Netlist.move_sink nl ~from_net:a pin ~to_net:b;
       false
     with Invalid_argument _ -> true)

let test_replace_cell () =
  let nl = fresh "t" in
  let a = Netlist.add_input nl "a" in
  let b = Netlist.add_input nl "b" in
  let z = Netlist.add_output nl "z" in
  let g = Netlist.add_inst nl ~name:"g" (lv Func.Nand2) [ ("A", a); ("B", b); ("Z", z) ] in
  Netlist.replace_cell nl g (Library.variant lib Func.Nand2 Vth.High Vth.Plain);
  Alcotest.(check bool) "now high vth" true ((Netlist.cell nl g).Cell.vth = Vth.High);
  Alcotest.(check bool) "incompatible raises" true
    (try
       Netlist.replace_cell nl g (lv Func.Inv);
       false
     with Invalid_argument _ -> true)

let test_remove_inst () =
  let nl = fresh "t" in
  let a = Netlist.add_input nl "a" in
  let z = Netlist.add_output nl "z" in
  let g = Netlist.add_inst nl ~name:"g" (lv Func.Inv) [ ("A", a); ("Z", z) ] in
  Netlist.remove_inst nl g;
  Alcotest.(check bool) "dead" true (Netlist.is_dead nl g);
  Alcotest.(check (option int)) "name freed" None (Netlist.find_inst nl "g");
  Alcotest.(check bool) "net undriven" true (Netlist.driver nl z = None);
  Alcotest.(check (list int)) "not in live list" [] (Netlist.live_insts nl);
  (* the freed name can be reused, and the net can be re-driven *)
  let g2 = Netlist.add_inst nl ~name:"g" (lv Func.Inv) [ ("A", a); ("Z", z) ] in
  Alcotest.(check bool) "rebuilt" true (not (Netlist.is_dead nl g2))

let test_fresh_names () =
  let nl = fresh "t" in
  let n1 = Netlist.fresh_net nl "n" in
  let n2 = Netlist.fresh_net nl "n" in
  Alcotest.(check bool) "distinct nets" true
    (Netlist.net_name nl n1 <> Netlist.net_name nl n2);
  let i1 = Netlist.fresh_inst_name nl "u" in
  let i2 = Netlist.fresh_inst_name nl "u" in
  Alcotest.(check bool) "distinct insts" true (i1 <> i2)

(* --- vgnd / holder plumbing --- *)

let mt_cell kind = Library.variant lib kind Vth.Low Vth.Mt_vgnd

let test_vgnd_attach () =
  let nl = fresh "t" in
  let a = Netlist.add_input nl "a" in
  let z = Netlist.add_output nl "z" in
  let mte = Netlist.add_input nl "MTE" in
  let g = Netlist.add_inst nl ~name:"g" (mt_cell Func.Inv) [ ("A", a); ("Z", z) ] in
  let sw =
    Netlist.add_inst nl ~name:"sw0" (Library.switch lib ~width:2.0) [ ("MTE", mte) ]
  in
  Netlist.set_vgnd_switch nl g (Some sw);
  Alcotest.(check (option int)) "attached" (Some sw) (Netlist.vgnd_switch nl g);
  Alcotest.(check (list int)) "members" [ g ] (Netlist.switch_members nl sw);
  Alcotest.(check (list int)) "switches" [ sw ] (Netlist.switches nl);
  Netlist.set_vgnd_switch nl g None;
  Alcotest.(check (option int)) "detached" None (Netlist.vgnd_switch nl g)

let test_vgnd_requires_port () =
  let nl = fresh "t" in
  let a = Netlist.add_input nl "a" in
  let z = Netlist.add_output nl "z" in
  let mte = Netlist.add_input nl "MTE" in
  let g = Netlist.add_inst nl ~name:"g" (lv Func.Inv) [ ("A", a); ("Z", z) ] in
  let sw = Netlist.add_inst nl ~name:"sw0" (Library.switch lib ~width:1.0) [ ("MTE", mte) ] in
  Alcotest.(check bool) "plain cell rejected" true
    (try
       Netlist.set_vgnd_switch nl g (Some sw);
       false
     with Invalid_argument _ -> true)

let test_vgnd_requires_switch () =
  let nl = fresh "t" in
  let a = Netlist.add_input nl "a" in
  let z = Netlist.add_output nl "z" in
  let g = Netlist.add_inst nl ~name:"g" (mt_cell Func.Inv) [ ("A", a); ("Z", z) ] in
  let g2 = Netlist.add_inst nl ~name:"g2" (lv Func.Inv) [ ("A", z); ("Z", Netlist.add_output nl "z2") ] in
  Alcotest.(check bool) "non-switch rejected" true
    (try
       Netlist.set_vgnd_switch nl g (Some g2);
       false
     with Invalid_argument _ -> true)

let test_holder_attachment () =
  let nl = fresh "t" in
  let a = Netlist.add_input nl "a" in
  let z = Netlist.add_output nl "z" in
  let mte = Netlist.add_input nl "MTE" in
  ignore (Netlist.add_inst nl ~name:"g" (mt_cell Func.Inv) [ ("A", a); ("Z", z) ]);
  let h = Netlist.add_inst nl ~name:"h" (Library.holder lib) [ ("MTE", mte); ("Z", z) ] in
  Alcotest.(check (option int)) "holder recorded" (Some h) (Netlist.holder_of nl z);
  (* holder is not a driver: the driver is still the gate *)
  Alcotest.(check bool) "driver unchanged" true (Netlist.driver nl z <> None)

let test_embedded_mte_pin () =
  let nl = fresh "t" in
  let a = Netlist.add_input nl "a" in
  let b = Netlist.add_input nl "b" in
  let z = Netlist.add_output nl "z" in
  let mte = Netlist.add_input nl "MTE" in
  let emb = Library.variant lib Func.Nand2 Vth.Low Vth.Mt_embedded in
  let g =
    Netlist.add_inst nl ~name:"g" emb [ ("A", a); ("B", b); ("Z", z); ("MTE", mte) ]
  in
  Alcotest.(check (option int)) "MTE connected" (Some mte) (Netlist.pin_net nl g "MTE");
  Alcotest.(check bool) "g sinks MTE" true
    (List.exists (fun (p : Netlist.pin) -> p.Netlist.inst = g) (Netlist.sinks nl mte))

(* --- traversal --- *)

let test_topo_order () =
  let b = Builder.create ~name:"topo" ~lib () in
  let a = Builder.input b "a" in
  let n1 = Builder.not_ b a in
  let n2 = Builder.not_ b n1 in
  let o = Builder.output b "o" in
  Builder.gate_into b Func.Buf [ n2 ] o;
  let nl = Builder.netlist b in
  let order = Netlist.topo_order nl in
  Alcotest.(check int) "3 comb cells" 3 (List.length order);
  (* each instance appears after its fanins *)
  let pos = Hashtbl.create 7 in
  List.iteri (fun i iid -> Hashtbl.replace pos iid i) order;
  List.iter
    (fun iid ->
      List.iter
        (fun pred ->
          Alcotest.(check bool) "fanin first" true
            (Hashtbl.find pos pred < Hashtbl.find pos iid))
        (Netlist.fanin_insts nl iid))
    order

let test_cycle_detection () =
  let nl = fresh "cyc" in
  let a = Netlist.add_net nl "a" in
  let b = Netlist.add_net nl "b" in
  ignore (Netlist.add_inst nl ~name:"g1" (lv Func.Inv) [ ("A", a); ("Z", b) ]);
  ignore (Netlist.add_inst nl ~name:"g2" (lv Func.Inv) [ ("A", b); ("Z", a) ]);
  Alcotest.(check bool) "cycle raises" true
    (try
       ignore (Netlist.topo_order nl);
       false
     with Netlist.Combinational_cycle _ -> true)

let test_ff_breaks_cycle () =
  let nl = Smt_circuits.Generators.counter ~name:"cnt" ~bits:4 lib in
  (* counter has feedback through flip-flops: must levelize fine *)
  Alcotest.(check bool) "no combinational cycle" true (Netlist.topo_order nl <> [])

let test_fanout_fanin () =
  let b = Builder.create ~name:"f" ~lib () in
  let a = Builder.input b "a" in
  let x = Builder.not_ b a in
  let y1 = Builder.not_ b x in
  let y2 = Builder.not_ b x in
  let o1 = Builder.output b "o1" and o2 = Builder.output b "o2" in
  Builder.gate_into b Func.Buf [ y1 ] o1;
  Builder.gate_into b Func.Buf [ y2 ] o2;
  let nl = Builder.netlist b in
  let inv0 =
    List.find
      (fun iid -> Netlist.pin_net nl iid "A" = Some a)
      (Netlist.live_insts nl)
  in
  Alcotest.(check int) "two fanouts" 2 (List.length (Netlist.fanout_insts nl inv0));
  Alcotest.(check (list int)) "no fanin from PI" [] (Netlist.fanin_insts nl inv0)

(* --- builder combinators --- *)

let test_reduce_tree () =
  let b = Builder.create ~name:"rt" ~lib () in
  let ins = List.init 7 (fun i -> Builder.input b (Printf.sprintf "i%d" i)) in
  let out = Builder.reduce_tree b Builder.and_ ins in
  let po = Builder.output b "o" in
  Builder.gate_into b Func.Buf [ out ] po;
  let nl = Builder.netlist b in
  Alcotest.(check (list string)) "valid" [] (Check.validate nl);
  (* 7-input AND: output is 1 iff all inputs are 1 *)
  let sim = Smt_sim.Simulator.create nl in
  let drive mask =
    Smt_sim.Simulator.set_inputs sim
      (List.mapi
         (fun i _ -> (Printf.sprintf "i%d" i, Smt_sim.Logic.of_bool (mask land (1 lsl i) <> 0)))
         ins);
    Smt_sim.Simulator.propagate sim;
    List.assoc "o" (Smt_sim.Simulator.output_values sim)
  in
  Alcotest.(check bool) "all ones" true (drive 0x7f = Smt_sim.Logic.T);
  Alcotest.(check bool) "one zero" true (drive 0x7e = Smt_sim.Logic.F);
  Alcotest.(check bool) "balanced depth" true
    (let sta = Smt_sta.Sta.analyze (Smt_sta.Sta.config ~clock_period:1e5 ()) nl in
     (* ceil(log2 7) = 3 AND levels + output buffer: depth 4, so arrival
        stays well below a 7-long chain *)
     let inv = Library.variant lib Func.And2 Vth.Low Vth.Plain in
     let chain7 = 7.0 *. Smt_cell.Cell.delay inv ~load_ff:inv.Cell.input_cap in
     Smt_sta.Sta.arrival sta (Option.get (Netlist.find_net nl "o")) < chain7)

let test_reduce_tree_empty () =
  let b = Builder.create ~name:"rte" ~lib () in
  Alcotest.(check bool) "empty raises" true
    (try
       ignore (Builder.reduce_tree b Builder.and_ []);
       false
     with Invalid_argument _ -> true)

let test_full_adder_truth () =
  let b = Builder.create ~name:"fa" ~lib () in
  let a = Builder.input b "a" in
  let bb = Builder.input b "b" in
  let c = Builder.input b "c" in
  let s, carry = Builder.full_adder b ~a ~b:bb ~cin:c in
  let so = Builder.output b "s" in
  let co = Builder.output b "co" in
  Builder.gate_into b Func.Buf [ s ] so;
  Builder.gate_into b Func.Buf [ carry ] co;
  let nl = Builder.netlist b in
  let sim = Smt_sim.Simulator.create nl in
  for mask = 0 to 7 do
    let bit i = mask land (1 lsl i) <> 0 in
    Smt_sim.Simulator.set_inputs sim
      [
        ("a", Smt_sim.Logic.of_bool (bit 0)); ("b", Smt_sim.Logic.of_bool (bit 1));
        ("c", Smt_sim.Logic.of_bool (bit 2));
      ];
    Smt_sim.Simulator.propagate sim;
    let total = (if bit 0 then 1 else 0) + (if bit 1 then 1 else 0) + if bit 2 then 1 else 0 in
    let outs = Smt_sim.Simulator.output_values sim in
    Alcotest.(check bool) "sum bit" true
      (List.assoc "s" outs = Smt_sim.Logic.of_bool (total land 1 = 1));
    Alcotest.(check bool) "carry bit" true
      (List.assoc "co" outs = Smt_sim.Logic.of_bool (total >= 2))
  done

(* --- stats --- *)

let test_stats () =
  let nl = Smt_circuits.Generators.c17 lib in
  let s = Nl_stats.compute nl in
  Alcotest.(check int) "6 gates" 6 s.Nl_stats.combinational;
  Alcotest.(check int) "no ffs" 0 s.Nl_stats.sequential;
  Alcotest.(check int) "all low vth" 6 s.Nl_stats.count_low_vth;
  Alcotest.(check bool) "area positive" true (s.Nl_stats.area_total > 0.0);
  Alcotest.(check (float 1e-9)) "no mt" 0.0 (Nl_stats.mt_area_fraction s)

(* --- validation --- *)

let test_validate_clean () =
  let nl = Smt_circuits.Generators.c17 lib in
  Alcotest.(check (list string)) "no problems" [] (Check.validate nl)

let test_validate_unconnected_pin () =
  let nl = fresh "bad" in
  let a = Netlist.add_input nl "a" in
  let z = Netlist.add_output nl "z" in
  ignore (Netlist.add_inst nl ~name:"g" (lv Func.Nand2) [ ("A", a); ("Z", z) ]);
  Alcotest.(check bool) "catches missing B" true
    (List.exists (fun m -> String.length m > 0) (Check.validate nl))

let test_validate_undriven () =
  let nl = fresh "bad" in
  let w = Netlist.add_net nl "w" in
  let z = Netlist.add_output nl "z" in
  ignore (Netlist.add_inst nl ~name:"g" (lv Func.Inv) [ ("A", w); ("Z", z) ]);
  Alcotest.(check bool) "catches undriven" true
    (List.exists
       (fun m ->
         let contains hay needle =
           let nh = String.length hay and nn = String.length needle in
           let rec loop i = i + nn <= nh && (String.sub hay i nn = needle || loop (i + 1)) in
           loop 0
         in
         contains m "no driver")
       (Check.validate nl))

let test_holder_required_rule () =
  (* MT driver fanning out to only MT cells: no holder needed; to a plain
     cell: needed; to a primary output: needed. *)
  let nl = fresh "rule" in
  let a = Netlist.add_input nl "a" in
  let mid = Netlist.add_net nl "mid" in
  let z = Netlist.add_output nl "z" in
  ignore (Netlist.add_inst nl ~name:"m1" (mt_cell Func.Inv) [ ("A", a); ("Z", mid) ]);
  ignore (Netlist.add_inst nl ~name:"m2" (mt_cell Func.Inv) [ ("A", mid); ("Z", z) ]);
  Alcotest.(check bool) "all-MT fanout: unnecessary" false (Smt_netlist.Check.holder_required nl mid);
  Alcotest.(check bool) "PO fanout: required" true (Smt_netlist.Check.holder_required nl z);
  (* add a plain sink on mid *)
  let z2 = Netlist.add_output nl "z2" in
  ignore (Netlist.add_inst nl ~name:"p1" (lv Func.Inv) [ ("A", mid); ("Z", z2) ]);
  Alcotest.(check bool) "plain fanout: required" true (Smt_netlist.Check.holder_required nl mid)

let test_post_mt_validation () =
  let nl = fresh "post" in
  let a = Netlist.add_input nl "a" in
  let z = Netlist.add_output nl "z" in
  ignore (Netlist.add_inst nl ~name:"m1" (mt_cell Func.Inv) [ ("A", a); ("Z", z) ]);
  let problems = Check.validate ~phase:Check.Post_mt nl in
  Alcotest.(check bool) "floating VGND caught" true
    (List.exists
       (fun m ->
         let contains hay needle =
           let nh = String.length hay and nn = String.length needle in
           let rec loop i = i + nn <= nh && (String.sub hay i nn = needle || loop (i + 1)) in
           loop 0
         in
         contains m "VGND")
       problems)

(* --- writer / parser / clone --- *)

let test_writer_parser_roundtrip () =
  let nl = Smt_circuits.Generators.c17 lib in
  let text = Writer.to_string nl in
  let nl2 = Parser.of_string ~lib text in
  Alcotest.(check string) "design name" (Netlist.design_name nl) (Netlist.design_name nl2);
  let s1 = Nl_stats.compute nl and s2 = Nl_stats.compute nl2 in
  Alcotest.(check int) "insts" s1.Nl_stats.instances s2.Nl_stats.instances;
  Alcotest.(check int) "nets" s1.Nl_stats.nets s2.Nl_stats.nets;
  Alcotest.(check string) "second dump identical" text (Writer.to_string nl2)

let test_roundtrip_preserves_vgnd () =
  let nl = fresh "v" in
  let a = Netlist.add_input nl "a" in
  let z = Netlist.add_output nl "z" in
  let mte = Netlist.add_input nl "MTE" in
  let g = Netlist.add_inst nl ~name:"g" (mt_cell Func.Inv) [ ("A", a); ("Z", z) ] in
  let sw = Netlist.add_inst nl ~name:"sw0" (Library.switch lib ~width:2.5) [ ("MTE", mte) ] in
  Netlist.set_vgnd_switch nl g (Some sw);
  ignore (Netlist.add_inst nl ~name:"h" (Library.holder lib) [ ("MTE", mte); ("Z", z) ]);
  let nl2 = Clone.copy nl in
  let g2 = Option.get (Netlist.find_inst nl2 "g") in
  let sw2 = Option.get (Netlist.find_inst nl2 "sw0") in
  Alcotest.(check (option int)) "vgnd restored" (Some sw2) (Netlist.vgnd_switch nl2 g2);
  Alcotest.(check (float 1e-9)) "switch width restored" 2.5
    (Netlist.cell nl2 sw2).Cell.switch_width;
  let z2 = Option.get (Netlist.find_net nl2 "z") in
  Alcotest.(check bool) "holder restored" true (Netlist.holder_of nl2 z2 <> None)

let test_roundtrip_preserves_clock () =
  let nl = Smt_circuits.Generators.counter ~name:"cnt" ~bits:3 lib in
  let nl2 = Clone.copy nl in
  match Netlist.clock_net nl2 with
  | Some c -> Alcotest.(check bool) "clock marked" true (Netlist.is_clock_net nl2 c)
  | None -> Alcotest.fail "clock lost"

let test_clone_is_equivalent () =
  let nl = Smt_circuits.Generators.c17 lib in
  let nl2 = Clone.copy nl in
  Alcotest.(check bool) "functionally equivalent" true (Smt_sim.Equiv.equivalent nl nl2)

let test_parser_rejects_garbage () =
  Alcotest.(check bool) "garbage raises" true
    (try
       ignore (Parser.of_string ~lib "modul x;");
       false
     with Parser.Parse_error _ -> true);
  Alcotest.(check bool) "unknown cell raises" true
    (try
       ignore
         (Parser.of_string ~lib "module t (a);\n input a;\n FROB g (.A(a));\nendmodule\n");
       false
     with Parser.Parse_error _ -> true)

let test_parser_synthesizes_switches () =
  let text =
    "module t (MTE);\n  input MTE;\n  SW_W7p3 s0 (.MTE(MTE));\nendmodule\n"
  in
  let nl = Parser.of_string ~lib text in
  let sw = Option.get (Netlist.find_inst nl "s0") in
  Alcotest.(check (float 1e-9)) "width parsed" 7.3 (Netlist.cell nl sw).Cell.switch_width

(* --- power domains & touched-net journal --- *)

let test_domain_table () =
  let nl = fresh "d" in
  let ea = Netlist.add_input nl "mte_a" in
  Netlist.add_domain nl ~name:"a" ~mte:(Some ea);
  Netlist.add_domain nl ~name:"ao" ~mte:None;
  Alcotest.(check (list (pair string (option int))))
    "declaration order preserved"
    [ ("a", Some ea); ("ao", None) ]
    (Netlist.domains nl);
  let x = Netlist.add_input nl "x" in
  let z = Netlist.add_output nl "z" in
  let g = Netlist.add_inst nl ~name:"g" (lv Func.Inv) [ ("A", x); ("Z", z) ] in
  Alcotest.(check (option string)) "unassigned" None (Netlist.inst_domain nl g);
  Netlist.set_inst_domain nl g (Some "a");
  Alcotest.(check (option string)) "assigned" (Some "a") (Netlist.inst_domain nl g);
  Alcotest.(check bool) "not isolation by default" false (Netlist.is_isolation nl g);
  Netlist.set_isolation nl g true;
  Alcotest.(check bool) "isolation marked" true (Netlist.is_isolation nl g)

let test_touched_journal () =
  let nl = fresh "j" in
  let a = Netlist.add_input nl "a" in
  let z = Netlist.add_output nl "z" in
  (* creation touches are part of building; drain to a clean slate *)
  ignore (Netlist.drain_touched nl);
  Alcotest.(check (list int)) "empty after drain" [] (Netlist.drain_touched nl);
  let g = Netlist.add_inst nl ~name:"g" (lv Func.Inv) [ ("A", a); ("Z", z) ] in
  let touched = Netlist.drain_touched nl in
  Alcotest.(check bool) "attach journals both pins" true
    (List.mem a touched && List.mem z touched);
  Alcotest.(check bool) "sorted and deduped" true
    (List.sort_uniq compare touched = touched);
  Alcotest.(check (list int)) "drain clears" [] (Netlist.drain_touched nl);
  Netlist.replace_cell nl g (mt_cell Func.Inv);
  Alcotest.(check bool) "replace_cell journals the conns" true
    (List.mem z (Netlist.drain_touched nl));
  Netlist.remove_inst nl g;
  Alcotest.(check bool) "remove_inst journals the conns" true
    (List.mem z (Netlist.drain_touched nl))

let test_roundtrip_preserves_domains () =
  let nl = fresh "dm" in
  let ea = Netlist.add_input nl "mte_a" in
  let x = Netlist.add_input nl "x" in
  let z = Netlist.add_output nl "z" in
  Netlist.add_domain nl ~name:"a" ~mte:(Some ea);
  Netlist.add_domain nl ~name:"ao" ~mte:None;
  let g = Netlist.add_inst nl ~name:"g" (lv Func.Inv) [ ("A", x); ("Z", z) ] in
  Netlist.set_inst_domain nl g (Some "a");
  let h = Netlist.add_inst nl ~name:"h" (Library.holder lib) [ ("MTE", ea); ("Z", z) ] in
  Netlist.set_isolation nl h true;
  let text = Writer.to_string nl in
  let nl2 = Parser.of_string ~lib text in
  Alcotest.(check (list (pair string bool)))
    "domain table restored (enable presence)"
    [ ("a", true); ("ao", false) ]
    (List.map (fun (n, m) -> (n, m <> None)) (Netlist.domains nl2));
  let g2 = Option.get (Netlist.find_inst nl2 "g") in
  let h2 = Option.get (Netlist.find_inst nl2 "h") in
  Alcotest.(check (option string)) "membership restored" (Some "a")
    (Netlist.inst_domain nl2 g2);
  Alcotest.(check bool) "isolation restored" true (Netlist.is_isolation nl2 h2);
  Alcotest.(check string) "second dump identical" text (Writer.to_string nl2)

let test_parser_rejects_bad_domain_refs () =
  Alcotest.(check bool) "@domain with unknown net raises" true
    (try
       ignore
         (Parser.of_string ~lib
            "module t (a);\n  input a;\n  // @domain d nosuch\nendmodule\n");
       false
     with Parser.Parse_error _ -> true);
  Alcotest.(check bool) "@member with unknown domain raises" true
    (try
       ignore
         (Parser.of_string ~lib
            "module t (a, z);\n  input a;\n  output z;\n  INV_LVT g (.A(a), .Z(z));\n  // @member g nosuch\nendmodule\n");
       false
     with Parser.Parse_error _ -> true)

let test_multi_domain_roundtrip () =
  (* the full multi-domain SoC survives a writer/parser trip with its
     domain table, memberships, and isolation marks intact *)
  let nl = Smt_circuits.Suite.multi_domain ~domains:3 ~name:"soc" lib in
  let nl2 = Clone.copy nl in
  Alcotest.(check (list (pair string bool)))
    "domain table survives"
    (List.map (fun (n, m) -> (n, m <> None)) (Netlist.domains nl))
    (List.map (fun (n, m) -> (n, m <> None)) (Netlist.domains nl2));
  Netlist.iter_insts nl (fun iid ->
      let name = Netlist.inst_name nl iid in
      let iid2 = Option.get (Netlist.find_inst nl2 name) in
      Alcotest.(check (option string))
        (name ^ " membership survives")
        (Netlist.inst_domain nl iid)
        (Netlist.inst_domain nl2 iid2);
      Alcotest.(check bool)
        (name ^ " isolation mark survives")
        (Netlist.is_isolation nl iid)
        (Netlist.is_isolation nl2 iid2))

let () =
  Alcotest.run "smt_netlist"
    [
      ( "construction",
        [
          Alcotest.test_case "nets and ports" `Quick test_add_net_and_ports;
          Alcotest.test_case "duplicate net" `Quick test_duplicate_net_rejected;
          Alcotest.test_case "clock marking" `Quick test_clock_marking;
          Alcotest.test_case "instance connectivity" `Quick test_add_inst_connectivity;
          Alcotest.test_case "multi-driver rejected" `Quick test_multiple_driver_rejected;
          Alcotest.test_case "driving PI rejected" `Quick test_driving_pi_rejected;
          Alcotest.test_case "unknown pin rejected" `Quick test_unknown_pin_rejected;
          Alcotest.test_case "connect/disconnect" `Quick test_connect_disconnect;
          Alcotest.test_case "move_sink" `Quick test_move_sink;
          Alcotest.test_case "replace_cell" `Quick test_replace_cell;
          Alcotest.test_case "remove_inst" `Quick test_remove_inst;
          Alcotest.test_case "fresh names" `Quick test_fresh_names;
        ] );
      ( "mt-plumbing",
        [
          Alcotest.test_case "vgnd attach/detach" `Quick test_vgnd_attach;
          Alcotest.test_case "vgnd requires port" `Quick test_vgnd_requires_port;
          Alcotest.test_case "vgnd requires switch" `Quick test_vgnd_requires_switch;
          Alcotest.test_case "holder attachment" `Quick test_holder_attachment;
          Alcotest.test_case "embedded MTE pin" `Quick test_embedded_mte_pin;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "topological order" `Quick test_topo_order;
          Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
          Alcotest.test_case "flip-flop breaks cycle" `Quick test_ff_breaks_cycle;
          Alcotest.test_case "fanout/fanin" `Quick test_fanout_fanin;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "reduce_tree" `Quick test_reduce_tree;
          Alcotest.test_case "reduce_tree empty" `Quick test_reduce_tree_empty;
          Alcotest.test_case "full adder truth table" `Quick test_full_adder_truth;
        ] );
      ( "validation",
        [
          Alcotest.test_case "clean circuit" `Quick test_validate_clean;
          Alcotest.test_case "unconnected pin" `Quick test_validate_unconnected_pin;
          Alcotest.test_case "undriven net" `Quick test_validate_undriven;
          Alcotest.test_case "holder rule (paper)" `Quick test_holder_required_rule;
          Alcotest.test_case "post-MT phase" `Quick test_post_mt_validation;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "writer/parser roundtrip" `Quick test_writer_parser_roundtrip;
          Alcotest.test_case "vgnd & holder preserved" `Quick test_roundtrip_preserves_vgnd;
          Alcotest.test_case "clock preserved" `Quick test_roundtrip_preserves_clock;
          Alcotest.test_case "clone equivalent" `Quick test_clone_is_equivalent;
          Alcotest.test_case "parser rejects garbage" `Quick test_parser_rejects_garbage;
          Alcotest.test_case "parser synthesizes switches" `Quick test_parser_synthesizes_switches;
        ] );
      ( "domains",
        [
          Alcotest.test_case "domain table" `Quick test_domain_table;
          Alcotest.test_case "touched-net journal" `Quick test_touched_journal;
          Alcotest.test_case "domains survive roundtrip" `Quick
            test_roundtrip_preserves_domains;
          Alcotest.test_case "bad domain refs rejected" `Quick
            test_parser_rejects_bad_domain_refs;
          Alcotest.test_case "multi-domain SoC roundtrip" `Quick
            test_multi_domain_roundtrip;
        ] );
    ]
