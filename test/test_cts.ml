module Netlist = Smt_netlist.Netlist
module Placement = Smt_place.Placement
module Cts = Smt_cts.Cts
module Func = Smt_cell.Func
module Cell = Smt_cell.Cell
module Library = Smt_cell.Library
module Generators = Smt_circuits.Generators
module Check = Smt_check.Drc

let lib = Library.default ()

let fixture ?(bits = 6) () =
  let nl = Generators.multiplier ~name:"m" ~bits lib in
  let place = Placement.place nl in
  (nl, place)

let ffs nl =
  List.filter (fun i -> (Netlist.cell nl i).Cell.kind = Func.Dff) (Netlist.live_insts nl)

let test_all_ck_pins_rewired () =
  let nl, place = fixture () in
  let _cts = Cts.synthesize place in
  List.iter
    (fun ff ->
      match Netlist.pin_net nl ff "CK" with
      | Some ck ->
        Alcotest.(check bool) "on a clock-marked net" true (Netlist.is_clock_net nl ck);
        Alcotest.(check bool) "not the raw root anymore" true
          (Netlist.clock_net nl <> Some ck);
        (match Netlist.driver nl ck with
        | Some p ->
          Alcotest.(check bool) "driven by a clock buffer" true
            ((Netlist.cell nl p.Netlist.inst).Cell.kind = Func.Clkbuf)
        | None -> Alcotest.fail "leaf clock net undriven")
      | None -> Alcotest.fail "CK unconnected")
    (ffs nl)

let test_fanout_capped () =
  let nl, place = fixture ~bits:8 () in
  let cap = 6 in
  let cts = Cts.synthesize ~max_fanout:cap place in
  Alcotest.(check bool) "buffers exist" true (Cts.buffer_count cts > 0);
  (* every clock net drives at most cap sinks *)
  Netlist.iter_nets nl (fun nid ->
      if Netlist.is_clock_net nl nid && Netlist.clock_net nl <> Some nid then
        Alcotest.(check bool) "leaf fanout under cap" true
          (List.length (Netlist.sinks nl nid) <= cap))

let test_root_hangs_from_port () =
  let nl, place = fixture () in
  let _ = Cts.synthesize place in
  let root = Option.get (Netlist.clock_net nl) in
  Alcotest.(check int) "root drives exactly the top buffer" 1
    (List.length (Netlist.sinks nl root))

let test_latencies () =
  let nl, place = fixture () in
  let cts = Cts.synthesize place in
  List.iter
    (fun ff ->
      let l = Cts.latency cts ff in
      Alcotest.(check bool) "latency positive" true (l > 0.0))
    (ffs nl);
  Alcotest.(check bool) "skew = max - min" true
    (Float.abs (Cts.skew cts -. (Cts.max_latency cts -. Cts.min_latency cts)) < 1e-9);
  Alcotest.(check bool) "skew below max latency" true (Cts.skew cts <= Cts.max_latency cts);
  Alcotest.(check (float 1e-9)) "unknown instance has zero latency" 0.0
    (Cts.latency cts 999999)

let test_netlist_still_valid () =
  let nl, place = fixture () in
  let _ = Cts.synthesize place in
  Alcotest.(check (list string)) "valid after CTS" [] (Check.validate nl)

let test_comb_design_empty_tree () =
  let nl = Generators.c17 lib in
  let place = Placement.place nl in
  let cts = Cts.synthesize place in
  Alcotest.(check int) "no buffers" 0 (Cts.buffer_count cts);
  Alcotest.(check (float 1e-9)) "no skew" 0.0 (Cts.skew cts)

let test_buffers_placed () =
  let nl, place = fixture () in
  let _ = Cts.synthesize place in
  let die = Placement.die place in
  List.iter
    (fun iid ->
      if (Netlist.cell nl iid).Cell.kind = Func.Clkbuf then
        match Placement.inst_point_opt place iid with
        | Some p -> Alcotest.(check bool) "in die" true (Smt_util.Geom.contains die p)
        | None -> Alcotest.fail "clock buffer unplaced")
    (Netlist.live_insts nl)

let test_area_accounted () =
  let nl, place = fixture () in
  let before = Netlist.total_area nl in
  let cts = Cts.synthesize place in
  let after = Netlist.total_area nl in
  Alcotest.(check (float 1e-6)) "area delta = buffer area" (Cts.buffer_area cts)
    (after -. before)

let test_levels_grow_with_ffs () =
  let _, place_small = fixture ~bits:4 () in
  let nl_big = Generators.multiplier ~name:"m2" ~bits:10 lib in
  let place_big = Placement.place nl_big in
  let small = Cts.synthesize ~max_fanout:4 place_small in
  let big = Cts.synthesize ~max_fanout:4 place_big in
  Alcotest.(check bool) "more flip-flops, at least as many levels" true
    (Cts.levels big >= Cts.levels small)

let () =
  Alcotest.run "smt_cts"
    [
      ( "tree",
        [
          Alcotest.test_case "ck pins rewired" `Quick test_all_ck_pins_rewired;
          Alcotest.test_case "fanout capped" `Quick test_fanout_capped;
          Alcotest.test_case "root from port" `Quick test_root_hangs_from_port;
          Alcotest.test_case "netlist valid" `Quick test_netlist_still_valid;
          Alcotest.test_case "comb design" `Quick test_comb_design_empty_tree;
          Alcotest.test_case "buffers placed" `Quick test_buffers_placed;
          Alcotest.test_case "area accounted" `Quick test_area_accounted;
          Alcotest.test_case "levels grow" `Quick test_levels_grow_with_ffs;
        ] );
      ( "latency",
        [ Alcotest.test_case "latencies & skew" `Quick test_latencies ] );
    ]
