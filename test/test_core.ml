module Netlist = Smt_netlist.Netlist
module Check = Smt_check.Drc
module Clone = Smt_netlist.Clone
module Placement = Smt_place.Placement
module Sta = Smt_sta.Sta
module Leakage = Smt_power.Leakage
module Bounce = Smt_power.Bounce
module Activity = Smt_sim.Activity
module Vth_assign = Smt_core.Vth_assign
module Mt_replace = Smt_core.Mt_replace
module Switch_insert = Smt_core.Switch_insert
module Cluster = Smt_core.Cluster
module Mte = Smt_core.Mte
module Reopt = Smt_core.Reopt
module Eco = Smt_core.Eco
module Func = Smt_cell.Func
module Vth = Smt_cell.Vth
module Cell = Smt_cell.Cell
module Tech = Smt_cell.Tech
module Library = Smt_cell.Library
module Generators = Smt_circuits.Generators
module Suite = Smt_circuits.Suite

let lib = Library.default ()
let tech = Library.tech lib

let adder () = Generators.ripple_adder ~registered:true ~name:"ra" ~bits:8 lib

let period_for nl margin =
  let probe = 1e6 in
  let sta = Sta.analyze (Sta.config ~clock_period:probe ()) nl in
  (probe -. Sta.wns sta) *. (1.0 +. margin)

(* --- Dual-Vth assignment --- *)

let test_assign_swaps_and_meets_timing () =
  let nl = adder () in
  let cfg = Sta.config ~clock_period:(period_for nl 0.30) () in
  let r = Vth_assign.assign cfg nl in
  Alcotest.(check bool) "some cells swapped" true (r.Vth_assign.swapped > 0);
  Alcotest.(check bool) "timing met" true (Sta.meets_timing r.Vth_assign.sta);
  (* swapped count matches the netlist *)
  let hv_count =
    List.length
      (List.filter
         (fun i ->
           let c = Netlist.cell nl i in
           c.Cell.vth = Vth.High && c.Cell.style = Vth.Plain)
         (Netlist.live_insts nl))
  in
  Alcotest.(check int) "count consistent" r.Vth_assign.swapped hv_count

let test_assign_reduces_leakage () =
  let nl = adder () in
  let before = (Leakage.standby nl).Leakage.total in
  let cfg = Sta.config ~clock_period:(period_for nl 0.30) () in
  ignore (Vth_assign.assign cfg nl);
  Alcotest.(check bool) "leakage drops" true ((Leakage.standby nl).Leakage.total < before)

let test_assign_no_slack_no_swap () =
  let nl = adder () in
  (* period exactly at the critical path: nothing may slow down (allow
     float-epsilon residue from the period probe round trip) *)
  let cfg = Sta.config ~clock_period:(period_for nl 0.0) () in
  let r = Vth_assign.assign cfg nl in
  Alcotest.(check bool) "timing preserved at zero margin" true
    (Sta.wns r.Vth_assign.sta >= -1e-6)

let test_assign_more_margin_more_swaps () =
  let nl1 = adder () and nl2 = adder () in
  let r1 = Vth_assign.assign (Sta.config ~clock_period:(period_for nl1 0.05) ()) nl1 in
  let r2 = Vth_assign.assign (Sta.config ~clock_period:(period_for nl2 0.60) ()) nl2 in
  Alcotest.(check bool) "looser clock, more high-vth" true
    (r2.Vth_assign.swapped >= r1.Vth_assign.swapped)

let test_assign_preserves_function () =
  let nl = adder () in
  let golden = Clone.copy nl in
  ignore (Vth_assign.assign (Sta.config ~clock_period:(period_for nl 0.30) ()) nl);
  Alcotest.(check bool) "equivalent after assignment" true
    (Smt_sim.Equiv.equivalent ~vectors:64 golden nl)

let test_low_vth_cells_listing () =
  let nl = adder () in
  let all = Vth_assign.low_vth_cells nl in
  Alcotest.(check bool) "initially all comb+ff low" true (List.length all > 0);
  ignore (Vth_assign.assign (Sta.config ~clock_period:(period_for nl 0.30) ()) nl);
  let remaining = Vth_assign.low_vth_cells nl in
  Alcotest.(check bool) "fewer remain" true (List.length remaining < List.length all)

(* --- MT replacement --- *)

let prepared ?(margin = 0.30) () =
  let nl = adder () in
  let cfg = Sta.config ~clock_period:(period_for nl margin) () in
  ignore (Vth_assign.assign { cfg with Sta.clock_period = cfg.Sta.clock_period *. 0.9 } nl);
  (nl, cfg)

let test_replace_improved () =
  let nl, _ = prepared () in
  let lv_before = List.length (Vth_assign.low_vth_cells nl) in
  let n = Mt_replace.replace Mt_replace.Improved nl in
  Alcotest.(check bool) "replaced some" true (n > 0);
  let mt = Mt_replace.mt_cells nl in
  Alcotest.(check int) "all are MT now" n (List.length mt);
  List.iter
    (fun i ->
      Alcotest.(check bool) "style is no-vgnd" true
        ((Netlist.cell nl i).Cell.style = Vth.Mt_no_vgnd))
    mt;
  (* flip-flops were never replaced *)
  Netlist.iter_insts nl (fun i ->
      let c = Netlist.cell nl i in
      if c.Cell.kind = Func.Dff then
        Alcotest.(check bool) "ff not MT" false (Cell.is_mt c));
  Alcotest.(check bool) "comb lv all gone" true
    (List.for_all
       (fun i -> (Netlist.cell nl i).Cell.kind = Func.Dff)
       (Vth_assign.low_vth_cells nl));
  Alcotest.(check bool) "count <= lv cells" true (n <= lv_before)

let test_replace_conventional () =
  let nl, _ = prepared () in
  let n = Mt_replace.replace Mt_replace.Conventional nl in
  Alcotest.(check bool) "replaced some" true (n > 0);
  List.iter
    (fun i ->
      Alcotest.(check bool) "style embedded" true
        ((Netlist.cell nl i).Cell.style = Vth.Mt_embedded))
    (Mt_replace.mt_cells nl)

let test_replace_preserves_function () =
  let nl, _ = prepared () in
  let golden = Clone.copy nl in
  ignore (Mt_replace.replace Mt_replace.Improved nl);
  Alcotest.(check bool) "equivalent after replacement" true
    (Smt_sim.Equiv.equivalent ~vectors:64 golden nl)

(* --- switch insertion --- *)

let inserted ?(minimize_holders = true) () =
  let nl, cfg = prepared () in
  ignore (Mt_replace.replace Mt_replace.Improved nl);
  let place = Placement.place nl in
  let r = Switch_insert.insert ~minimize_holders place in
  (nl, place, cfg, r)

let test_insert_initial_structure () =
  let nl, _, _, r = inserted () in
  Alcotest.(check (list int)) "exactly one switch" [ r.Switch_insert.initial_switch ]
    (Netlist.switches nl);
  (* every MT cell hangs from it *)
  List.iter
    (fun i ->
      Alcotest.(check (option int)) "attached" (Some r.Switch_insert.initial_switch)
        (Netlist.vgnd_switch nl i))
    (Mt_replace.mt_cells nl);
  (* netlist is structurally complete for the post-MT phase *)
  Alcotest.(check (list string)) "post-MT valid" [] (Check.validate ~phase:Check.Post_mt nl)

let test_insert_requires_pending_cells () =
  let nl = adder () in
  let place = Placement.place nl in
  Alcotest.(check bool) "raises without MT cells" true
    (try
       ignore (Switch_insert.insert place);
       false
     with Invalid_argument _ -> true)

let test_holder_minimization () =
  let _, _, _, r_min = inserted ~minimize_holders:true () in
  let _, _, _, r_all = inserted ~minimize_holders:false () in
  Alcotest.(check bool) "some holders avoided" true (r_min.Switch_insert.holders_avoided > 0);
  Alcotest.(check bool) "minimized < every-net" true
    (r_min.Switch_insert.holders_inserted < r_all.Switch_insert.holders_inserted);
  Alcotest.(check int) "avoided + inserted is invariant"
    (r_all.Switch_insert.holders_inserted + r_all.Switch_insert.holders_avoided)
    (r_min.Switch_insert.holders_inserted + r_min.Switch_insert.holders_avoided)

let test_insert_standby_safe () =
  (* with holders inserted, no net anywhere floats in standby *)
  let nl, _, _, _ = inserted () in
  let sim = Smt_sim.Simulator.create nl in
  Smt_sim.Simulator.reset sim;
  let inputs = List.map (fun (name, _) -> (name, Smt_sim.Logic.T)) (Netlist.inputs nl) in
  Smt_sim.Simulator.set_inputs sim inputs;
  Smt_sim.Simulator.propagate ~mode:Smt_sim.Simulator.Standby sim;
  (* every floating net must feed only MT cells (whose inputs are dont-care
     in standby) *)
  List.iter
    (fun nid ->
      List.iter
        (fun (p : Netlist.pin) ->
          Alcotest.(check bool)
            (Printf.sprintf "floating %s reaches only MT cells" (Netlist.net_name nl nid))
            true
            (Cell.is_mt (Netlist.cell nl p.Netlist.inst)))
        (Netlist.sinks nl nid))
    (Smt_sim.Simulator.floating_nets sim)

let test_mte_is_input () =
  let nl, _, _, r = inserted () in
  Alcotest.(check bool) "MTE is a primary input" true (Netlist.is_pi nl r.Switch_insert.mte_net);
  Alcotest.(check bool) "MTE has sinks" true
    (Switch_insert.mte_sinks nl r.Switch_insert.mte_net <> [])

(* --- clustering --- *)

let clustered ?params () =
  let nl, place, cfg, r = inserted () in
  let act = Activity.estimate ~cycles:64 nl in
  let built = Cluster.build ~activity:act ?params place ~mte_net:r.Switch_insert.mte_net in
  (nl, place, cfg, act, built)

let test_cluster_constraints_respected () =
  let nl, place, _, act, built = clustered () in
  let p = Cluster.default_params tech in
  Alcotest.(check bool) "clusters exist" true (built.Cluster.clusters <> []);
  List.iter
    (fun c ->
      Alcotest.(check bool) "cell cap" true
        (List.length c.Cluster.members <= p.Cluster.cell_limit);
      Alcotest.(check bool) "length cap" true (c.Cluster.wire_length <= p.Cluster.length_limit);
      Alcotest.(check bool) "bounce under limit" true
        (c.Cluster.bounce <= p.Cluster.bounce_limit +. 1e-9);
      Alcotest.(check bool) "sustained under EM" true
        (c.Cluster.sustained_ua <= p.Cluster.current_limit))
    built.Cluster.clusters;
  (* every MT cell in exactly one cluster *)
  let assigned = List.concat_map (fun c -> c.Cluster.members) built.Cluster.clusters in
  let mt = Mt_replace.mt_cells nl in
  Alcotest.(check int) "all cells clustered" (List.length mt) (List.length assigned);
  Alcotest.(check int) "no duplicates" (List.length assigned)
    (List.length (List.sort_uniq compare assigned));
  ignore act;
  ignore place

let test_cluster_replaces_initial_switch () =
  let nl, _, _, _, built = clustered () in
  let switches = Netlist.switches nl in
  Alcotest.(check int) "one switch per cluster" (List.length built.Cluster.clusters)
    (List.length switches);
  Alcotest.(check (list string)) "valid post-MT" [] (Check.validate ~phase:Check.Post_mt nl)

let test_cluster_switch_sized_for_bounce () =
  let nl, place, _, act, _ = clustered () in
  let reports =
    Bounce.analyze ~activity:act nl ~wire_length_of:(fun sw -> Cluster.vgnd_length place sw)
  in
  Alcotest.(check int) "no bounce violations at estimates" 0 (Bounce.violations reports)

let test_cluster_diversity_saves_width () =
  let p_div = Cluster.default_params tech in
  let p_nodiv = { p_div with Cluster.diversity = false } in
  let _, _, _, _, with_div = clustered ~params:p_div () in
  let _, _, _, _, without = clustered ~params:p_nodiv () in
  Alcotest.(check bool) "diversity sizing narrows total switch width" true
    (with_div.Cluster.total_switch_width < without.Cluster.total_switch_width)

let test_cluster_tighter_length_more_clusters () =
  let p = Cluster.default_params tech in
  let tight = { p with Cluster.length_limit = p.Cluster.length_limit /. 3.0 } in
  let _, _, _, _, base = clustered ~params:p () in
  let _, _, _, _, tightened = clustered ~params:tight () in
  Alcotest.(check bool) "shorter VGND lines need more clusters" true
    (List.length tightened.Cluster.clusters >= List.length base.Cluster.clusters)

let test_cluster_em_cap_enforced () =
  let p = { (Cluster.default_params tech) with Cluster.cell_limit = 3 } in
  let _, _, _, _, built = clustered ~params:p () in
  List.iter
    (fun c -> Alcotest.(check bool) "<=3 cells" true (List.length c.Cluster.members <= 3))
    built.Cluster.clusters

let test_cluster_refine () =
  let nl, place, _, act, built = clustered () in
  let refined = Cluster.refine ~activity:act place in
  Alcotest.(check bool) "width never increases" true
    (refined.Cluster.total_switch_width <= built.Cluster.total_switch_width +. 1e-6);
  (* same cell population, still one switch each, constraints intact *)
  let before = List.concat_map (fun c -> c.Cluster.members) built.Cluster.clusters in
  let after = List.concat_map (fun c -> c.Cluster.members) refined.Cluster.clusters in
  Alcotest.(check int) "members conserved" (List.length before) (List.length after);
  Alcotest.(check (list int)) "same cells"
    (List.sort compare before) (List.sort compare after);
  let p = Cluster.default_params tech in
  List.iter
    (fun c ->
      Alcotest.(check bool) "bounce ok" true (c.Cluster.bounce <= p.Cluster.bounce_limit +. 1e-9);
      Alcotest.(check bool) "length ok" true
        (c.Cluster.wire_length <= p.Cluster.length_limit +. 1e-9);
      Alcotest.(check bool) "count ok" true
        (List.length c.Cluster.members <= p.Cluster.cell_limit))
    refined.Cluster.clusters;
  Alcotest.(check (list string)) "netlist valid" [] (Check.validate ~phase:Check.Post_mt nl)

let test_required_width () =
  let p = Cluster.default_params tech in
  (match Cluster.required_width tech p ~current_ua:20.0 ~wire_length:0.0 with
  | Some w ->
    let b = Bounce.bounce_v tech ~switch_width:w ~wire_length:0.0 ~current_ua:20.0 in
    Alcotest.(check bool) "sized width meets limit" true (b <= p.Cluster.bounce_limit)
  | None -> Alcotest.fail "feasible case");
  (* wire so long the budget is blown: infeasible *)
  Alcotest.(check bool) "infeasible detected" true
    (Cluster.required_width tech p ~current_ua:1000.0 ~wire_length:10000.0 = None)

(* --- MTE buffering --- *)

let test_mte_buffer_tree () =
  let nl, place, _, _, _ = clustered () in
  let mte = Option.get (Netlist.find_net nl "MTE") in
  let before = List.length (Netlist.sinks nl mte) in
  let r = Mte.buffer_tree ~max_fanout:4 place ~mte_net:mte in
  if before > 4 then begin
    Alcotest.(check bool) "buffers inserted" true (r.Mte.buffers > 0);
    Alcotest.(check bool) "root fanout capped" true (r.Mte.root_fanout <= 4)
  end;
  Alcotest.(check bool) "worst stage fanout capped" true
    (Mte.max_stage_fanout nl mte <= 4);
  Alcotest.(check (list string)) "still valid" [] (Check.validate ~phase:Check.Post_mt nl)

let test_mte_small_net_untouched () =
  let nl, place, _, _, _ = clustered () in
  let mte = Option.get (Netlist.find_net nl "MTE") in
  let r = Mte.buffer_tree ~max_fanout:10000 place ~mte_net:mte in
  Alcotest.(check int) "no buffers needed" 0 r.Mte.buffers

(* --- reoptimization --- *)

(* Pre-route sizing under-estimated the loads (estimation error); the
   extracted loads are much larger, so switching currents rise and some
   clusters bounce above the limit until the re-optimization pass widens
   their footers — the paper's post-route CoolPower invocation. *)
let routed_load _ = 40.0

let test_reopt_fixes_routed_bounce () =
  let nl, place, _, act, _ = clustered () in
  let detour = 1.4 in
  let routed_length sw = Cluster.vgnd_length place sw *. detour in
  let before = Bounce.analyze ~activity:act ~load_of:routed_load nl ~wire_length_of:routed_length in
  Alcotest.(check bool) "extraction exposes violations" true (Bounce.violations before > 0);
  let r = Reopt.reoptimize ~activity:act ~load_of:routed_load ~detour place in
  Alcotest.(check bool) "reopt saw them too" true (r.Reopt.violations_before > 0);
  Alcotest.(check int) "violations repaired" 0 r.Reopt.violations_after;
  let after = Bounce.analyze ~activity:act ~load_of:routed_load nl ~wire_length_of:routed_length in
  Alcotest.(check int) "independent check agrees" 0 (Bounce.violations after)

let test_reopt_widens_for_detours () =
  let _, place, _, act, built = clustered () in
  let r = Reopt.reoptimize ~activity:act ~load_of:routed_load ~detour:1.4 place in
  let widened =
    List.filter (fun a -> a.Reopt.new_width > a.Reopt.old_width) r.Reopt.adjustments
  in
  Alcotest.(check bool) "some switches widened" true (widened <> []);
  Alcotest.(check int) "one adjustment per cluster" (List.length built.Cluster.clusters)
    (List.length r.Reopt.adjustments)

(* --- hold-fix ECO --- *)

let test_eco_fixes_injected_skew () =
  let nl, place, cfg, _, _ = clustered () in
  (* inject heavy capture-side clock latency to create hold violations *)
  let rng = Smt_util.Rng.create 5 in
  let latencies = Hashtbl.create 97 in
  Netlist.iter_insts nl (fun i ->
      if (Netlist.cell nl i).Cell.kind = Func.Dff then
        Hashtbl.replace latencies i (Smt_util.Rng.float rng 60.0));
  let cfg =
    {
      cfg with
      Sta.clock_latency =
        (fun i -> match Hashtbl.find_opt latencies i with Some l -> l | None -> 0.0);
    }
  in
  let sta0 = Sta.analyze cfg nl in
  Alcotest.(check bool) "skew injected a violation" true (not (Sta.meets_hold sta0));
  let r = Eco.fix_hold cfg place in
  Alcotest.(check bool) "buffers added" true (r.Eco.buffers_added > 0);
  Alcotest.(check bool) "hold clean" true (r.Eco.hold_after >= 0.0);
  Alcotest.(check bool) "hold improved" true (r.Eco.hold_after > r.Eco.hold_before);
  let sta1 = Sta.analyze cfg nl in
  Alcotest.(check bool) "independent STA agrees" true (Sta.meets_hold sta1)

let test_eco_noop_when_clean () =
  let nl, place, cfg, _, _ = clustered () in
  let sta = Sta.analyze cfg nl in
  if Sta.meets_hold sta then begin
    let r = Eco.fix_hold cfg place in
    Alcotest.(check int) "no buffers" 0 r.Eco.buffers_added
  end;
  ignore nl

let test_eco_respects_setup () =
  (* an endpoint that is both hold-violating and setup-critical must NOT be
     padded: the ECO leaves it for skew rework instead of breaking setup *)
  let b = Smt_netlist.Builder.create ~name:"guard" ~lib () in
  let clk = Smt_netlist.Builder.input ~clock:true b "clk" in
  let d = Smt_netlist.Builder.input b "d" in
  let q1 = Smt_netlist.Builder.dff b ~d ~clk in
  let q2 = Smt_netlist.Builder.dff b ~d:q1 ~clk in
  let o = Smt_netlist.Builder.output b "o" in
  Smt_netlist.Builder.gate_into b Func.Buf [ q2 ] o;
  let nl = Smt_netlist.Builder.netlist b in
  let place = Placement.place nl in
  let ffs =
    List.filter (fun i -> (Netlist.cell nl i).Cell.kind = Func.Dff) (Netlist.live_insts nl)
  in
  let capture =
    List.find
      (fun i ->
        match Netlist.pin_net nl i "D" with
        | Some dn -> not (Netlist.is_pi nl dn)
        | None -> false)
      ffs
  in
  (* a 60ps capture skew: enough to violate hold on the wire-only path
     without breaking any setup check by itself *)
  let base = Sta.config ~clock_period:500.0 () in
  let latency i = if i = capture then 60.0 else 0.0 in
  let cfg = { base with Sta.clock_latency = latency } in
  let sta0 = Sta.analyze cfg nl in
  Alcotest.(check bool) "hold violated" true (not (Sta.meets_hold sta0));
  let area_before = Netlist.total_area nl in
  let r = Eco.fix_hold cfg place in
  (* the only violating endpoint is unaffordable... or padded within its
     slack; either way setup must survive *)
  Alcotest.(check bool) "setup preserved" true (r.Eco.setup_after >= 0.0);
  ignore area_before

let test_eco_preserves_function () =
  let nl, place, cfg, _, _ = clustered () in
  let golden = Clone.copy nl in
  let latencies = Hashtbl.create 97 in
  Netlist.iter_insts nl (fun i ->
      if (Netlist.cell nl i).Cell.kind = Func.Dff then
        Hashtbl.replace latencies i (if i mod 2 = 0 then 80.0 else 0.0));
  let cfg =
    {
      cfg with
      Sta.clock_latency =
        (fun i -> match Hashtbl.find_opt latencies i with Some l -> l | None -> 0.0);
    }
  in
  ignore (Eco.fix_hold cfg place);
  Alcotest.(check bool) "equivalent after ECO" true
    (Smt_sim.Equiv.equivalent ~vectors:48 golden nl)

(* --- fig. 2/3 example --- *)

let test_fig23_holder_rule () =
  let nl = Suite.fig23_example lib in
  let cfg = Sta.config ~clock_period:(period_for nl 0.10) () in
  ignore (Vth_assign.assign { cfg with Sta.clock_period = cfg.Sta.clock_period *. 0.95 } nl);
  let n = Mt_replace.replace Mt_replace.Improved nl in
  if n > 0 then begin
    let place = Placement.place nl in
    let r = Switch_insert.insert place in
    (* the paper's claim: not every MT-driven net needs a holder *)
    Alcotest.(check bool) "holder count below MT count" true
      (r.Switch_insert.holders_inserted <= n);
    Alcotest.(check (list string)) "valid" [] (Check.validate ~phase:Check.Post_mt nl)
  end

let () =
  Alcotest.run "smt_core"
    [
      ( "vth-assign",
        [
          Alcotest.test_case "swaps & meets timing" `Quick test_assign_swaps_and_meets_timing;
          Alcotest.test_case "reduces leakage" `Quick test_assign_reduces_leakage;
          Alcotest.test_case "zero margin safe" `Quick test_assign_no_slack_no_swap;
          Alcotest.test_case "margin monotone" `Quick test_assign_more_margin_more_swaps;
          Alcotest.test_case "function preserved" `Quick test_assign_preserves_function;
          Alcotest.test_case "low-vth listing" `Quick test_low_vth_cells_listing;
        ] );
      ( "mt-replace",
        [
          Alcotest.test_case "improved style" `Quick test_replace_improved;
          Alcotest.test_case "conventional style" `Quick test_replace_conventional;
          Alcotest.test_case "function preserved" `Quick test_replace_preserves_function;
        ] );
      ( "switch-insert",
        [
          Alcotest.test_case "initial structure" `Quick test_insert_initial_structure;
          Alcotest.test_case "requires MT cells" `Quick test_insert_requires_pending_cells;
          Alcotest.test_case "holder minimization" `Quick test_holder_minimization;
          Alcotest.test_case "standby safe" `Quick test_insert_standby_safe;
          Alcotest.test_case "MTE input" `Quick test_mte_is_input;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "constraints respected" `Quick test_cluster_constraints_respected;
          Alcotest.test_case "replaces initial switch" `Quick test_cluster_replaces_initial_switch;
          Alcotest.test_case "sized for bounce" `Quick test_cluster_switch_sized_for_bounce;
          Alcotest.test_case "diversity saves width" `Quick test_cluster_diversity_saves_width;
          Alcotest.test_case "length cap vs clusters" `Quick test_cluster_tighter_length_more_clusters;
          Alcotest.test_case "EM cap" `Quick test_cluster_em_cap_enforced;
          Alcotest.test_case "refinement" `Quick test_cluster_refine;
          Alcotest.test_case "required width math" `Quick test_required_width;
        ] );
      ( "mte",
        [
          Alcotest.test_case "buffer tree" `Quick test_mte_buffer_tree;
          Alcotest.test_case "small net untouched" `Quick test_mte_small_net_untouched;
        ] );
      ( "reopt",
        [
          Alcotest.test_case "fixes routed bounce" `Quick test_reopt_fixes_routed_bounce;
          Alcotest.test_case "widens for detours" `Quick test_reopt_widens_for_detours;
        ] );
      ( "eco",
        [
          Alcotest.test_case "fixes injected skew" `Quick test_eco_fixes_injected_skew;
          Alcotest.test_case "setup survives padding" `Quick test_eco_respects_setup;
          Alcotest.test_case "noop when clean" `Quick test_eco_noop_when_clean;
          Alcotest.test_case "function preserved" `Quick test_eco_preserves_function;
        ] );
      ( "fig23",
        [ Alcotest.test_case "holder rule on the example" `Quick test_fig23_holder_rule ] );
    ]
