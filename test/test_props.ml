(* Property-based tests (qcheck) over the core data structures and the MT
   invariants, registered as alcotest cases. *)

module Netlist = Smt_netlist.Netlist
module Check = Smt_check.Drc
module Clone = Smt_netlist.Clone
module Nl_stats = Smt_netlist.Nl_stats
module Placement = Smt_place.Placement
module Parasitics = Smt_route.Parasitics
module Sta = Smt_sta.Sta
module Geom = Smt_util.Geom
module Heap = Smt_util.Heap
module Stats = Smt_util.Stats
module Rng = Smt_util.Rng
module Union_find = Smt_util.Union_find
module Library = Smt_cell.Library
module Generators = Smt_circuits.Generators

let lib = Library.default ()

let qtest = QCheck_alcotest.to_alcotest

(* --- util properties --- *)

let prop_heap_sorts =
  QCheck2.Test.make ~name:"heap drains sorted" ~count:200
    QCheck2.Gen.(list int)
    (fun xs ->
      let h = Heap.of_array ~cmp:compare (Array.of_list xs) in
      Heap.to_sorted_list h = List.sort compare xs)

let prop_heap_push_pop_min =
  QCheck2.Test.make ~name:"heap pop is the minimum" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      Heap.pop h = Some (List.fold_left min (List.hd xs) xs))

let prop_union_find_transitive =
  QCheck2.Test.make ~name:"union-find transitivity" ~count:100
    QCheck2.Gen.(list_size (int_range 0 60) (pair (int_range 0 19) (int_range 0 19)))
    (fun pairs ->
      let uf = Union_find.create 20 in
      List.iter (fun (a, b) -> Union_find.union uf a b) pairs;
      (* find is consistent with same *)
      List.for_all
        (fun (a, b) -> Union_find.same uf a b = (Union_find.find uf a = Union_find.find uf b))
        pairs)

let prop_percentile_bounded =
  QCheck2.Test.make ~name:"percentile within min/max" ~count:200
    QCheck2.Gen.(pair (list_size (int_range 1 40) (float_range (-100.) 100.)) (float_range 0. 100.))
    (fun (xs, p) ->
      let v = Stats.percentile xs p in
      let lo, hi = Stats.min_max xs in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let prop_spanning_vs_bbox =
  (* the rectilinear MST is at least as long as the larger bbox side and at
     most n-1 times the full half-perimeter *)
  QCheck2.Test.make ~name:"spanning length bounds" ~count:200
    QCheck2.Gen.(list_size (int_range 2 12) (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun raw ->
      let pts = List.map (fun (x, y) -> Geom.point x y) raw in
      let len = Geom.spanning_length pts in
      let box = Geom.bbox_of_points pts in
      let lower = Float.max (Geom.width box) (Geom.height box) in
      let upper = float_of_int (List.length pts - 1) *. Geom.hpwl box in
      len >= lower -. 1e-6 && len <= upper +. 1e-6)

let prop_rng_int_uniformish =
  QCheck2.Test.make ~name:"rng int hits the whole range" ~count:20
    QCheck2.Gen.(int_range 2 20)
    (fun bound ->
      let r = Rng.create bound in
      let seen = Array.make bound false in
      for _ = 1 to 2000 do
        seen.(Rng.int r bound) <- true
      done;
      Array.for_all Fun.id seen)

(* --- random netlists --- *)

let random_netlist seed =
  let which = seed mod 4 in
  match which with
  | 0 ->
    Generators.layered ~seed ~min_depth:2 ~name:(Printf.sprintf "rnd%d" seed) ~inputs:6
      ~outputs:4 ~width:8 ~depth:5 lib
  | 1 -> Generators.ripple_adder ~registered:(seed mod 2 = 0) ~name:(Printf.sprintf "rnd%d" seed) ~bits:(3 + (seed mod 5)) lib
  | 2 -> Generators.multiplier ~name:(Printf.sprintf "rnd%d" seed) ~bits:(2 + (seed mod 4)) lib
  | _ -> Generators.counter ~name:(Printf.sprintf "rnd%d" seed) ~bits:(2 + (seed mod 8)) lib

let seed_gen = QCheck2.Gen.int_range 0 10_000

let prop_generated_valid =
  QCheck2.Test.make ~name:"generated netlists validate" ~count:40 seed_gen
    (fun seed -> Check.validate (random_netlist seed) = [])

let prop_topo_respects_edges =
  QCheck2.Test.make ~name:"topological order respects fanin" ~count:30 seed_gen
    (fun seed ->
      let nl = random_netlist seed in
      let order = Netlist.topo_order nl in
      let pos = Hashtbl.create 97 in
      List.iteri (fun i iid -> Hashtbl.replace pos iid i) order;
      List.for_all
        (fun iid ->
          List.for_all
            (fun pred ->
              match (Hashtbl.find_opt pos pred, Hashtbl.find_opt pos iid) with
              | Some pp, Some pi -> pp < pi
              | _ -> true (* flip-flops are outside the comb frame *))
            (Netlist.fanin_insts nl iid))
        order)

let prop_roundtrip_preserves_stats =
  QCheck2.Test.make ~name:"writer/parser roundtrip preserves structure" ~count:30 seed_gen
    (fun seed ->
      let nl = random_netlist seed in
      let nl2 = Clone.copy nl in
      let s1 = Nl_stats.compute nl and s2 = Nl_stats.compute nl2 in
      s1 = s2)

let prop_roundtrip_equivalent =
  QCheck2.Test.make ~name:"clone is functionally equivalent" ~count:12 seed_gen
    (fun seed ->
      let nl = random_netlist seed in
      Smt_sim.Equiv.equivalent ~vectors:16 ~cycles:4 nl (Clone.copy nl))

let prop_placement_in_die =
  QCheck2.Test.make ~name:"placement stays in the die" ~count:15 seed_gen
    (fun seed ->
      let nl = random_netlist seed in
      let place = Placement.place ~seed nl in
      let die = Placement.die place in
      List.for_all
        (fun iid ->
          match Placement.inst_point_opt place iid with
          | Some p -> Geom.contains die p
          | None -> false)
        (Netlist.live_insts nl))

let prop_sta_arrivals_monotone =
  QCheck2.Test.make ~name:"arrival grows along paths" ~count:15 seed_gen
    (fun seed ->
      let nl = random_netlist seed in
      let sta = Sta.analyze (Sta.config ~clock_period:1e5 ()) nl in
      List.for_all
        (fun iid ->
          match Netlist.output_net nl iid with
          | None -> true
          | Some out ->
            if Netlist.is_clock_net nl out then true
            else
              List.for_all
                (fun pred ->
                  match Netlist.output_net nl pred with
                  | Some pout when not (Netlist.is_clock_net nl pout) ->
                    (* flip-flop outputs restart the clock frame *)
                    (Netlist.cell nl pred).Smt_cell.Cell.kind = Smt_cell.Func.Dff
                    || Sta.arrival sta out > Sta.arrival sta pout -. 1e-9
                  | Some _ | None -> true)
                (Netlist.fanin_insts nl iid))
        (Netlist.topo_order nl))

let prop_extraction_nonnegative =
  QCheck2.Test.make ~name:"extracted RC non-negative" ~count:15 seed_gen
    (fun seed ->
      let nl = random_netlist seed in
      let place = Placement.place ~seed nl in
      let ext = Parasitics.extract place in
      let ok = ref true in
      Netlist.iter_nets nl (fun nid ->
          if Parasitics.net_cap ext nid < 0.0 || Parasitics.net_res ext nid < 0.0 then
            ok := false);
      !ok)

let prop_leakage_positive =
  QCheck2.Test.make ~name:"standby leakage positive and below active-floor x100" ~count:20
    seed_gen
    (fun seed ->
      let nl = random_netlist seed in
      let b = Smt_power.Leakage.standby nl in
      b.Smt_power.Leakage.total > 0.0
      && b.Smt_power.Leakage.total <= 100.0 *. Smt_power.Leakage.active nl)

(* --- MT invariants on randomized flows --- *)

let prop_cluster_invariants =
  QCheck2.Test.make ~name:"cluster constraints hold for random circuits" ~count:8
    (QCheck2.Gen.int_range 0 1000)
    (fun seed ->
      let nl = random_netlist ((seed * 4) + 2) (* multipliers: plenty of MT cells *) in
      let probe = 1e6 in
      let sta = Sta.analyze (Sta.config ~clock_period:probe ()) nl in
      let period = (probe -. Sta.wns sta) *. 1.05 in
      ignore (Smt_core.Vth_assign.assign (Sta.config ~clock_period:period ()) nl);
      let n = Smt_core.Mt_replace.replace Smt_core.Mt_replace.Improved nl in
      if n = 0 then true
      else begin
        let place = Placement.place ~seed nl in
        let ins = Smt_core.Switch_insert.insert place in
        let built =
          Smt_core.Cluster.build place ~mte_net:ins.Smt_core.Switch_insert.mte_net
        in
        let tech = Library.tech lib in
        let p = Smt_core.Cluster.default_params tech in
        List.for_all
          (fun c ->
            List.length c.Smt_core.Cluster.members <= p.Smt_core.Cluster.cell_limit
            && c.Smt_core.Cluster.wire_length <= p.Smt_core.Cluster.length_limit +. 1e-9
            && c.Smt_core.Cluster.bounce <= p.Smt_core.Cluster.bounce_limit +. 1e-9)
          built.Smt_core.Cluster.clusters
        && Check.validate ~phase:Check.Post_mt nl = []
      end)

let prop_holder_rule_sound =
  QCheck2.Test.make ~name:"holder rule: no floating net reaches a non-MT sink" ~count:8
    (QCheck2.Gen.int_range 0 1000)
    (fun seed ->
      let nl = random_netlist ((seed * 4) + 2) in
      let probe = 1e6 in
      let sta = Sta.analyze (Sta.config ~clock_period:probe ()) nl in
      let period = (probe -. Sta.wns sta) *. 1.05 in
      ignore (Smt_core.Vth_assign.assign (Sta.config ~clock_period:period ()) nl);
      let n = Smt_core.Mt_replace.replace Smt_core.Mt_replace.Improved nl in
      if n = 0 then true
      else begin
        let place = Placement.place ~seed nl in
        ignore (Smt_core.Switch_insert.insert place);
        let sim = Smt_sim.Simulator.create nl in
        Smt_sim.Simulator.reset sim;
        let inputs =
          Netlist.inputs nl
          |> List.map (fun (name, _) -> (name, Smt_sim.Logic.of_bool (seed mod 2 = 0)))
        in
        Smt_sim.Simulator.set_inputs sim inputs;
        Smt_sim.Simulator.propagate ~mode:Smt_sim.Simulator.Standby sim;
        List.for_all
          (fun nid ->
            (not (Netlist.is_po nl nid))
            && List.for_all
                 (fun (pin : Netlist.pin) ->
                   Smt_cell.Cell.is_mt (Netlist.cell nl pin.Netlist.inst))
                 (Netlist.sinks nl nid))
          (Smt_sim.Simulator.floating_nets sim)
      end)

(* --- extension modules --- *)

let prop_router_sound =
  QCheck2.Test.make ~name:"router covers spread nets, detour >= 1" ~count:10 seed_gen
    (fun seed ->
      let nl = random_netlist seed in
      let place = Placement.place ~seed nl in
      let r = Smt_route.Global_router.route place in
      let ok = ref true in
      Netlist.iter_nets nl (fun nid ->
          let pts = Placement.pin_points place nid in
          if List.length pts >= 2 && Placement.net_hpwl place nid > 0.0 then
            if Smt_route.Global_router.net_length r nid <= 0.0 then ok := false);
      !ok && Smt_route.Global_router.detour_factor r place >= 1.0)

let prop_optimizer_safe =
  QCheck2.Test.make ~name:"optimizer preserves function and validity" ~count:10 seed_gen
    (fun seed ->
      let nl = random_netlist seed in
      let golden = Clone.copy nl in
      ignore (Smt_netlist.Optimize.run nl);
      Check.validate nl = [] && Smt_sim.Equiv.equivalent ~vectors:12 ~cycles:4 golden nl)

let prop_placement_io_roundtrip =
  QCheck2.Test.make ~name:"placement io roundtrip" ~count:10 seed_gen
    (fun seed ->
      let nl = random_netlist seed in
      let place = Placement.place ~seed nl in
      let back = Placement.of_string nl (Placement.to_string place) in
      List.for_all
        (fun iid ->
          let a = Placement.inst_point place iid and b = Placement.inst_point back iid in
          Float.abs (a.Geom.x -. b.Geom.x) < 1e-3 && Float.abs (a.Geom.y -. b.Geom.y) < 1e-3)
        (Netlist.live_insts nl))

let prop_nldm_lookup_bounded =
  QCheck2.Test.make ~name:"nldm lookup within table bounds" ~count:100
    QCheck2.Gen.(pair (float_range (-50.) 400.) (float_range (-10.) 200.))
    (fun (slew, load) ->
      let cell =
        Library.variant lib Smt_cell.Func.Nand2 Smt_cell.Vth.Low Smt_cell.Vth.Plain
      in
      let arcs = Smt_cell.Nldm.characterize cell in
      let v = Smt_cell.Nldm.lookup arcs.Smt_cell.Nldm.delay ~slew ~load in
      let values = arcs.Smt_cell.Nldm.delay.Smt_cell.Nldm.values in
      let lo = Array.fold_left (fun acc row -> Array.fold_left Float.min acc row) infinity values in
      let hi =
        Array.fold_left (fun acc row -> Array.fold_left Float.max acc row) neg_infinity values
      in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let prop_incremental_sta_exact =
  QCheck2.Test.make ~name:"incremental STA equals full re-analysis" ~count:12
    ~print:string_of_int seed_gen
    (fun seed ->
      let nl = random_netlist seed in
      let cfg = Sta.config ~clock_period:1e5 () in
      let sta = Sta.analyze cfg nl in
      let rng = Rng.create seed in
      let lib = Smt_netlist.Netlist.lib nl in
      let victims =
        Netlist.live_insts nl
        |> List.filter (fun iid ->
               let c = Netlist.cell nl iid in
               (not (Smt_cell.Func.is_sequential c.Smt_cell.Cell.kind))
               && (not (Smt_cell.Func.is_infrastructure c.Smt_cell.Cell.kind))
               && Smt_cell.Library.has_variant ~drive:c.Smt_cell.Cell.drive lib
                    c.Smt_cell.Cell.kind Smt_cell.Vth.High c.Smt_cell.Cell.style)
        |> List.filter (fun _ -> Rng.chance rng 0.3)
      in
      if victims = [] then true
      else begin
        List.iter
          (fun iid ->
            let c = Netlist.cell nl iid in
            Netlist.replace_cell nl iid
              (Smt_cell.Library.restyle lib c Smt_cell.Vth.High c.Smt_cell.Cell.style))
          victims;
        let incr = Sta.update sta ~changed:victims in
        let full = Sta.analyze cfg nl in
        (* infinities (no endpoints of a kind) must compare equal, not nan *)
        let feq a b = a = b || Float.abs (a -. b) < 1e-6 in
        let ok = ref true in
        Netlist.iter_nets nl (fun nid ->
            if not (feq (Sta.arrival incr nid) (Sta.arrival full nid)) then ok := false);
        !ok
        && feq (Sta.wns incr) (Sta.wns full)
        && feq (Sta.worst_hold_slack incr) (Sta.worst_hold_slack full)
      end)

let prop_compose_sound =
  QCheck2.Test.make ~name:"composition validates and counts add" ~count:10
    (QCheck2.Gen.pair seed_gen seed_gen)
    (fun (s1, s2) ->
      let a = random_netlist s1 and b = random_netlist s2 in
      let sa = Nl_stats.compute a and sb = Nl_stats.compute b in
      let top = Smt_netlist.Compose.merge ~name:"top" [ ("u0", a); ("u1", b) ] in
      Check.validate top = []
      && (Nl_stats.compute top).Nl_stats.instances
         = sa.Nl_stats.instances + sb.Nl_stats.instances)

let prop_sleep_vector_bounded =
  QCheck2.Test.make ~name:"state-aware leakage never exceeds stateless" ~count:12 seed_gen
    (fun seed ->
      let nl = random_netlist seed in
      let s = Smt_power.Sleep_vector.search ~tries:8 ~seed nl in
      let stateless = (Smt_power.Leakage.standby nl).Smt_power.Leakage.total in
      s.Smt_power.Sleep_vector.best_nw <= s.Smt_power.Sleep_vector.worst_nw +. 1e-9
      && s.Smt_power.Sleep_vector.worst_nw <= stateless +. 1e-9)

let prop_standby_protocol_holds =
  QCheck2.Test.make ~name:"standby protocol invariants on random circuits" ~count:6
    (QCheck2.Gen.int_range 0 500)
    (fun seed ->
      let nl = random_netlist ((seed * 4) + 2) in
      let probe = 1e6 in
      let sta = Sta.analyze (Sta.config ~clock_period:probe ()) nl in
      let period = (probe -. Sta.wns sta) *. 1.05 in
      ignore (Smt_core.Vth_assign.assign (Sta.config ~clock_period:period ()) nl);
      let n = Smt_core.Mt_replace.replace Smt_core.Mt_replace.Improved nl in
      if n = 0 then true
      else begin
        let place = Placement.place ~seed nl in
        ignore (Smt_core.Switch_insert.insert place);
        let o = Smt_core.Standby.simulate ~seed nl in
        o.Smt_core.Standby.state_preserved
        && o.Smt_core.Standby.outputs_defined_in_standby
        && o.Smt_core.Standby.x_leaks_into_awake_logic = 0
        && o.Smt_core.Standby.all_wake_cycles_correct
      end)

(* --- checker / fault-injection properties --- *)

module Drc = Smt_check.Drc
module Repair = Smt_check.Repair
module Violation = Smt_check.Violation
module Fault = Smt_fault.Fault
module Verify = Smt_verify.Verify
module Rules = Smt_verify.Rules
module Flow = Smt_core.Flow
module Suite = Smt_circuits.Suite

(* Improved-MT transform of a random circuit; None when no cell survives as
   an MT candidate. *)
let random_mt_netlist seed =
  let nl = random_netlist ((seed * 4) + 2) in
  let probe = 1e6 in
  let sta = Sta.analyze (Sta.config ~clock_period:probe ()) nl in
  let period = (probe -. Sta.wns sta) *. 1.05 in
  ignore (Smt_core.Vth_assign.assign (Sta.config ~clock_period:period ()) nl);
  if Smt_core.Mt_replace.replace Smt_core.Mt_replace.Improved nl = 0 then None
  else begin
    let place = Placement.place ~seed nl in
    ignore (Smt_core.Switch_insert.insert place);
    Some (nl, place)
  end

let prop_checker_clean_on_generated =
  QCheck2.Test.make ~name:"checker finds no errors in generated netlists" ~count:25
    seed_gen
    (fun seed ->
      Violation.errors (Drc.check ~expect_buffered_mte:false (random_netlist seed)) = [])

let prop_checker_agrees_with_validate =
  (* Every injected fault class is caught by its advertised checker: the
     structural classes by a DRC code, the semantic-only classes by a
     standby-verifier rule — and the semantic-only classes must stay
     invisible to the DRC (that is their whole point). *)
  QCheck2.Test.make ~name:"every fault class caught by DRC or the standby verifier"
    ~count:22
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 0 10))
    (fun (seed, which) ->
      let fault = List.nth Fault.all (which mod List.length Fault.all) in
      let fixture =
        (* Domain-only classes need declared domains and isolation clamps,
           which the random flow product never has. *)
        if Fault.requires_domains fault then
          Some (Suite.multi_domain ~domains:(2 + (seed mod 3)) ~name:"pd" lib, None)
        else
          Option.map (fun (nl, place) -> (nl, Some place)) (random_mt_netlist seed)
      in
      match fixture with
      | None -> true
      | Some (nl, place) ->
        (match Fault.inject ~seed nl fault with
        | None -> not (Fault.requires_domains fault)
        | Some _ ->
          let vs = Drc.check ?place ~expect_buffered_mte:false nl in
          let detected = List.map (fun v -> v.Violation.code) vs in
          let codes_ok =
            match Fault.expected_codes fault with
            | [] -> Violation.errors vs = [] (* DRC-invisible by design *)
            | expected -> List.exists (fun c -> List.mem c detected) expected
          in
          let rules_ok =
            match Fault.expected_rules fault with
            | [] -> true
            | expected ->
              let ids =
                List.map
                  (fun f -> f.Rules.rule.Rules.id)
                  (Verify.analyze nl).Verify.findings
              in
              List.exists (fun r -> List.mem r ids) expected
          in
          codes_ok && rules_ok))

let prop_flow_products_lint_clean =
  (* Whatever circuit the suite generates and whichever technique the
     flow applies, the finished netlist must carry no semantic standby
     errors: the holders, switches, and enable tree the flow inserts are
     exactly what the abstract interpretation demands. *)
  QCheck2.Test.make ~name:"flow products are lint-clean" ~count:8
    QCheck2.Gen.(pair (int_range 1 1000) (int_range 0 23))
    (fun (seed, which) ->
      let name, gen = List.nth Suite.all (which mod List.length Suite.all) in
      let technique =
        match which mod 3 with
        | 0 -> Flow.Dual_vth
        | 1 -> Flow.Conventional_smt
        | _ -> Flow.Improved_smt
      in
      let nl = gen lib in
      (* Multi-domain circuits are generated post-MT: lint them as-is. *)
      if not (Suite.is_multi_domain name) then begin
        let options = { Flow.default_options with Flow.seed; Flow.activity_cycles = 32 } in
        ignore (Flow.run ~options technique nl)
      end;
      (Verify.analyze nl).Verify.findings = [])

let prop_repair_clears_repairable =
  QCheck2.Test.make ~name:"repair clears repairable faults and is idempotent" ~count:15
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 0 8))
    (fun (seed, which) ->
      match random_mt_netlist seed with
      | None -> true
      | Some (nl, place) ->
        let fault = List.nth Fault.all (which mod List.length Fault.all) in
        if not (Fault.repairable fault) then true
        else begin
          match Fault.inject ~seed nl fault with
          | None -> true
          | Some _ ->
            let vs = Drc.check ~place ~expect_buffered_mte:false nl in
            ignore (Repair.repair ~place nl vs);
            let after = Drc.check ~place ~expect_buffered_mte:false nl in
            let again = Repair.repair ~place nl after in
            Violation.errors after = [] && again.Repair.repaired = 0
        end)

(* One randomized ECO delta: a gate swap, a keeper deletion, or a
   keeper-enable rewire — the edit classes the flow's own repair and
   minimize stages produce. *)
let eco_delta rng nl =
  let module Cell = Smt_cell.Cell in
  let module Func = Smt_cell.Func in
  let pick = function
    | [] -> None
    | xs -> Some (List.nth xs (Rng.int rng (List.length xs)))
  in
  let swap_gate () =
    let comb =
      List.filter
        (fun i ->
          let k = (Netlist.cell nl i).Cell.kind in
          k = Func.Nand2 || k = Func.Nor2)
        (Netlist.live_insts nl)
    in
    match pick comb with
    | None -> ()
    | Some iid ->
      let c = Netlist.cell nl iid in
      let k' = if c.Cell.kind = Func.Nand2 then Func.Nor2 else Func.Nand2 in
      Netlist.replace_cell nl iid
        (Library.variant ~drive:c.Cell.drive (Netlist.lib nl) k' c.Cell.vth c.Cell.style)
  in
  let holders () =
    List.filter
      (fun i -> (Netlist.cell nl i).Cell.kind = Func.Holder)
      (Netlist.live_insts nl)
  in
  match Rng.int rng 3 with
  | 0 -> swap_gate ()
  | 1 -> (
    match pick (holders ()) with
    | None -> swap_gate ()
    | Some h -> Netlist.remove_inst nl h)
  | _ -> (
    let nets = ref [] in
    Netlist.iter_nets nl (fun nid ->
        if not (Netlist.is_clock_net nl nid) then nets := nid :: !nets);
    match (pick (holders ()), pick (List.rev !nets)) with
    | Some h, Some nid -> Netlist.connect nl h "MTE" nid
    | _ -> swap_gate ())

let prop_incremental_matches_full =
  (* The incremental soundness claim: after any chain of ECO deltas,
     [Verify.update] over the journal's dirty set reports byte-identical
     findings and the same value map as a from-scratch analysis.  25
     cases x 4 deltas = 100 randomized deltas per run. *)
  QCheck2.Test.make ~name:"incremental verify matches from-scratch over ECO deltas"
    ~count:25
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 2 4))
    (fun (seed, domains) ->
      let nl = Suite.multi_domain ~domains ~name:"inc" lib in
      let session, _ = Smt_verify.Verify.start nl in
      let rng = Rng.create (0x1ec0 + seed) in
      let ok = ref true in
      for _ = 1 to 4 do
        eco_delta rng nl;
        let ru = Smt_verify.Verify.update session in
        let rf = Verify.analyze nl in
        let render (r : Verify.result) = List.map Rules.to_string r.Verify.findings in
        if render ru <> render rf || ru.Verify.values <> rf.Verify.values then
          ok := false
      done;
      !ok)

let () =
  Alcotest.run "smt_props"
    [
      ( "util",
        [
          qtest prop_heap_sorts;
          qtest prop_heap_push_pop_min;
          qtest prop_union_find_transitive;
          qtest prop_percentile_bounded;
          qtest prop_spanning_vs_bbox;
          qtest prop_rng_int_uniformish;
        ] );
      ( "netlist",
        [
          qtest prop_generated_valid;
          qtest prop_topo_respects_edges;
          qtest prop_roundtrip_preserves_stats;
          qtest prop_roundtrip_equivalent;
        ] );
      ( "physical",
        [
          qtest prop_placement_in_die;
          qtest prop_sta_arrivals_monotone;
          qtest prop_extraction_nonnegative;
          qtest prop_leakage_positive;
        ] );
      ( "mt-invariants",
        [ qtest prop_cluster_invariants; qtest prop_holder_rule_sound ] );
      ( "check",
        [
          qtest prop_checker_clean_on_generated;
          qtest prop_checker_agrees_with_validate;
          qtest prop_repair_clears_repairable;
          qtest prop_flow_products_lint_clean;
          qtest prop_incremental_matches_full;
        ] );
      ( "extensions",
        [
          qtest prop_router_sound;
          qtest prop_optimizer_safe;
          qtest prop_placement_io_roundtrip;
          qtest prop_nldm_lookup_bounded;
          qtest prop_standby_protocol_holds;
          qtest prop_incremental_sta_exact;
          qtest prop_compose_sound;
          qtest prop_sleep_vector_bounded;
        ] );
    ]
