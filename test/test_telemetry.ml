(* Tests for the persistent telemetry layer: histogram quantiles, GC
   profiling spans, the append-only run ledger, trend analysis over it,
   and the folded-stacks flame export. *)

module Metrics = Smt_obs.Metrics
module Prof = Smt_obs.Prof
module Ledger = Smt_obs.Ledger
module Trend = Smt_obs.Trend
module Flame = Smt_obs.Flame
module Snapshot = Smt_obs.Snapshot
module Obs_json = Smt_obs.Obs_json

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec at i = i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1)) in
  nl = 0 || at 0

let check_contains msg needle haystack =
  Alcotest.(check bool) msg true (contains ~needle haystack)

(* ------------------------------------------------------------------ *)
(* Metrics: histogram quantiles                                        *)
(* ------------------------------------------------------------------ *)

let test_quantile_interpolation () =
  let h = Metrics.histogram ~buckets:[ 1.0; 2.0; 4.0; 8.0 ] "tele.q_interp" in
  List.iter (Metrics.observe h) [ 0.5; 1.5; 3.0; 6.0 ];
  (* one hit per finite bucket: rank q*4 walks the cumulative counts and
     interpolates linearly inside the winning bucket *)
  Alcotest.(check (float 1e-9)) "p50" 2.0 (Metrics.histogram_quantile h 0.5);
  Alcotest.(check (float 1e-9)) "p75" 4.0 (Metrics.histogram_quantile h 0.75);
  Alcotest.(check (float 1e-9)) "p100" 8.0 (Metrics.histogram_quantile h 1.0)

let test_quantile_edges () =
  let h = Metrics.histogram ~buckets:[ 1.0; 2.0 ] "tele.q_edges" in
  Alcotest.(check bool) "empty histogram is nan" true
    (Float.is_nan (Metrics.histogram_quantile h 0.5));
  Metrics.observe h 100.0;
  (* the open +inf bucket reports its lower bound, the largest finite one *)
  Alcotest.(check (float 1e-9)) "+inf bucket degrades to lower bound" 2.0
    (Metrics.histogram_quantile h 0.99)

let test_quantile_of_hits_delta () =
  let h = Metrics.histogram ~buckets:[ 1.0; 2.0; 4.0 ] "tele.q_delta" in
  Metrics.observe h 0.5;
  let hits0 = Metrics.histogram_hits h in
  List.iter (Metrics.observe h) [ 3.0; 3.0 ];
  let delta = Array.map2 ( - ) (Metrics.histogram_hits h) hits0 in
  Alcotest.(check int) "delta counts only the phase" 2 (Array.fold_left ( + ) 0 delta);
  (* both phase observations land in (2,4]: every quantile stays there *)
  let p50 = Metrics.quantile_of_hits h delta 0.5 in
  Alcotest.(check bool) "phase quantile ignores earlier hits" true
    (p50 > 2.0 && p50 <= 4.0)

let test_snapshot_and_json_quantiles () =
  let h = Metrics.histogram ~buckets:[ 1.0; 2.0 ] "tele.q_snap" in
  Metrics.observe h 0.5;
  let snap = Metrics.snapshot () in
  Alcotest.(check (float 1e-9)) "snapshot p50" 0.5
    (List.assoc "tele.q_snap.p50" snap);
  Alcotest.(check bool) "snapshot p90 present" true
    (List.mem_assoc "tele.q_snap.p90" snap);
  Alcotest.(check bool) "snapshot p99 present" true
    (List.mem_assoc "tele.q_snap.p99" snap);
  check_contains "to_json carries quantiles" "\"p50\":" (Metrics.to_json ())

(* ------------------------------------------------------------------ *)
(* Prof: GC attribution spans                                          *)
(* ------------------------------------------------------------------ *)

let alloc_some () =
  ignore (Sys.opaque_identity (Array.init 50_000 (fun i -> float_of_int i)))

let test_prof_disabled_is_noop () =
  Prof.disable ();
  Prof.reset ();
  let m = Prof.mark () in
  alloc_some ();
  Alcotest.(check bool) "record gives None when off" true (Prof.record "off" m = None);
  Alcotest.(check (list (pair string reject))) "nothing accumulated" [] (Prof.spans ())

let test_prof_span_records_allocation () =
  Prof.enable ();
  Prof.reset ();
  Prof.with_span "alloc" alloc_some;
  let st = List.assoc "alloc" (Prof.spans ()) in
  Alcotest.(check bool) "words charged to the span" true
    (st.Prof.minor_words +. st.Prof.major_words > 0.0);
  Alcotest.(check bool) "peak heap observed" true (st.Prof.top_heap_words > 0);
  Prof.disable ()

let test_prof_collect_merge_additive () =
  Prof.enable ();
  Prof.reset ();
  Prof.with_span "alloc" alloc_some;
  let words (st : Prof.stats) = st.Prof.minor_words +. st.Prof.major_words in
  let before = words (List.assoc "alloc" (Prof.spans ())) in
  let (), col = Prof.collect (fun () -> Prof.with_span "alloc" alloc_some) in
  Alcotest.(check (float 1e-9)) "collect scope left the caller untouched" before
    (words (List.assoc "alloc" (Prof.spans ())));
  Prof.merge col;
  Alcotest.(check bool) "merge folds the scope in additively" true
    (words (List.assoc "alloc" (Prof.spans ())) > before);
  Prof.disable ()

let test_prof_stats_json_roundtrip () =
  let st =
    {
      Prof.minor_words = 1234.0;
      promoted_words = 56.0;
      major_words = 789.0;
      minor_collections = 3;
      major_collections = 1;
      compactions = 0;
      top_heap_words = 4096;
    }
  in
  match Obs_json.parse (Prof.stats_json st) with
  | Error e -> Alcotest.fail e
  | Ok doc -> (
    match Prof.stats_of_json doc with
    | Error e -> Alcotest.fail e
    | Ok st' -> Alcotest.(check bool) "stats round-trip" true (st = st'))

(* ------------------------------------------------------------------ *)
(* Ledger                                                              *)
(* ------------------------------------------------------------------ *)

let sample_workload ?(prof = []) name v =
  {
    Ledger.lw_workload =
      Snapshot.workload ~name
        ~qor:[ ("area_um2", v); ("standby_nw", v /. 2.0) ]
        ~counters:[ ("sta.arrival_evals", int_of_float v) ]
        ~stage_ms:[ ("replace", 1.5) ];
    Ledger.lw_prof = prof;
  }

let sample_record ?prof ~time v =
  Ledger.make ~time ~tool:"smt_flow test" ~tag:"t" ~circuit:"circuit_a"
    ~technique:"improved" ~guard:"mte" ~jobs:2 ~args:[ "run"; "-c"; "circuit_a" ]
    ~kind:"run"
    [ sample_workload ?prof "circuit_a/improved" v ]

let with_temp_ledger f =
  let path = Filename.temp_file "smt_ledger" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path with Sys_error _ -> ());
      try Sys.remove (path ^ ".lock") with Sys_error _ -> ())
    (fun () -> f path)

let test_ledger_line_roundtrip () =
  let prof =
    [
      ( "replace",
        { Prof.zero with Prof.minor_words = 42.0; minor_collections = 2 } );
    ]
  in
  let r = sample_record ~prof ~time:1000.0 123.0 in
  match Ledger.of_line (Ledger.to_json r) with
  | Error e -> Alcotest.fail e
  | Ok r' ->
    Alcotest.(check int) "schema version" Ledger.schema_version r'.Ledger.r_version;
    Alcotest.(check string) "id survives" r.Ledger.r_id r'.Ledger.r_id;
    Alcotest.(check string) "kind" "run" r'.Ledger.r_kind;
    Alcotest.(check string) "circuit" "circuit_a" r'.Ledger.r_circuit;
    Alcotest.(check string) "technique" "improved" r'.Ledger.r_technique;
    Alcotest.(check string) "guard" "mte" r'.Ledger.r_guard;
    Alcotest.(check int) "jobs" 2 r'.Ledger.r_jobs;
    Alcotest.(check string) "args hash" r.Ledger.r_args_hash r'.Ledger.r_args_hash;
    let w = List.hd r'.Ledger.r_workloads in
    Alcotest.(check string) "workload name" "circuit_a/improved"
      w.Ledger.lw_workload.Snapshot.w_name;
    Alcotest.(check (float 1e-9)) "qor survives exactly" 123.0
      (List.assoc "area_um2" w.Ledger.lw_workload.Snapshot.w_qor);
    let p = List.assoc "replace" w.Ledger.lw_prof in
    Alcotest.(check (float 1e-9)) "prof rides along" 42.0 p.Prof.minor_words

let test_ledger_id_deterministic () =
  let a = sample_record ~time:1000.0 123.0 in
  let b = sample_record ~time:1000.0 123.0 in
  let c = sample_record ~time:2000.0 123.0 in
  Alcotest.(check string) "same payload, same id" a.Ledger.r_id b.Ledger.r_id;
  Alcotest.(check bool) "time feeds the id" true (a.Ledger.r_id <> c.Ledger.r_id);
  Alcotest.(check int) "12-hex id" 12 (String.length a.Ledger.r_id)

let test_ledger_truncated_tail () =
  with_temp_ledger @@ fun path ->
  Ledger.append path (sample_record ~time:1000.0 1.0);
  Ledger.append path (sample_record ~time:2000.0 2.0);
  (* a run that died mid-append leaves a torn last line *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"version\":1,\"id\":\"dead";
  close_out oc;
  (match Ledger.read path with
  | Error e -> Alcotest.fail e
  | Ok { Ledger.records; skipped } ->
    Alcotest.(check int) "intact records survive" 2 (List.length records);
    Alcotest.(check int) "torn tail skipped" 1 skipped);
  (match Ledger.gc path with
  | Error e -> Alcotest.fail e
  | Ok g ->
    Alcotest.(check int) "gc keeps the good lines" 2 g.Ledger.kept;
    Alcotest.(check int) "gc drops the torn one" 1 g.Ledger.dropped_malformed);
  match Ledger.read path with
  | Error e -> Alcotest.fail e
  | Ok { Ledger.skipped; _ } ->
    Alcotest.(check int) "clean after gc" 0 skipped

let test_ledger_gc_keep_and_find () =
  with_temp_ledger @@ fun path ->
  let rs = List.map (fun i -> sample_record ~time:(float_of_int i) (float_of_int i)) [ 1; 2; 3 ] in
  List.iter (Ledger.append path) rs;
  let last = List.nth rs 2 in
  (match Ledger.gc ~keep:1 path with
  | Error e -> Alcotest.fail e
  | Ok g ->
    Alcotest.(check int) "only the newest survives" 1 g.Ledger.kept;
    Alcotest.(check int) "older records dropped" 2 g.Ledger.dropped_old);
  (match Ledger.find path last.Ledger.r_id with
  | Error e -> Alcotest.fail e
  | Ok r -> Alcotest.(check string) "newest is findable" last.Ledger.r_id r.Ledger.r_id);
  match Ledger.find path (List.hd rs).Ledger.r_id with
  | Ok _ -> Alcotest.fail "gc'd record still findable"
  | Error _ -> ()

(* A holder SIGKILLed between lock create and unlink leaves the .lock
   file behind with nobody to remove it.  Simulate the orphan directly
   (create the file, backdate its mtime past the staleness threshold) and
   check a later append breaks it rather than spinning forever. *)
let test_ledger_stale_lock_broken () =
  with_temp_ledger @@ fun path ->
  let lock = path ^ ".lock" in
  let fd = Unix.openfile lock [ Unix.O_CREAT; Unix.O_EXCL; Unix.O_WRONLY ] 0o644 in
  Unix.close fd;
  let past = Unix.gettimeofday () -. 3600. in
  Unix.utimes lock past past;
  Ledger.append path (sample_record ~time:1000.0 1.0);
  Alcotest.(check bool) "stale lock removed" false (Sys.file_exists lock);
  match Ledger.read path with
  | Error e -> Alcotest.fail e
  | Ok { Ledger.records; skipped } ->
    Alcotest.(check int) "append landed" 1 (List.length records);
    Alcotest.(check int) "no torn lines" 0 skipped

(* The threshold is configurable: with SMT_LOCK_STALE_MS=50 even a
   fresh-looking orphan is broken after ~50ms of spinning, so a test
   (or an impatient operator) need not wait out the 10s default. *)
let test_ledger_stale_lock_threshold_env () =
  with_temp_ledger @@ fun path ->
  let lock = path ^ ".lock" in
  let fd = Unix.openfile lock [ Unix.O_CREAT; Unix.O_EXCL; Unix.O_WRONLY ] 0o644 in
  Unix.close fd;
  let saved = Sys.getenv_opt "SMT_LOCK_STALE_MS" in
  Unix.putenv "SMT_LOCK_STALE_MS" "50";
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "SMT_LOCK_STALE_MS" (Option.value saved ~default:""))
  @@ fun () ->
  let t0 = Unix.gettimeofday () in
  Ledger.append path (sample_record ~time:1000.0 1.0);
  let waited = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "broke within ~the configured threshold" true (waited < 5.);
  match Ledger.read path with
  | Error e -> Alcotest.fail e
  | Ok { Ledger.records; _ } ->
    Alcotest.(check int) "append landed" 1 (List.length records)

(* ------------------------------------------------------------------ *)
(* Trend                                                               *)
(* ------------------------------------------------------------------ *)

let test_trend_steady () =
  let records = List.map (fun t -> sample_record ~time:t 10.0) [ 1.0; 2.0; 3.0 ] in
  let series = Trend.analyze records in
  Alcotest.(check bool) "qor series present" true (series <> []);
  List.iter
    (fun s ->
      Alcotest.(check string) "qor_only by default" "qor."
        (String.sub s.Trend.sr_field 0 4);
      Alcotest.(check int) "three points" 3 (List.length s.Trend.sr_points);
      Alcotest.(check string) "steady" "steady" (Trend.status_name s.Trend.sr_status))
    series;
  Alcotest.(check bool) "no regressions" false (Trend.has_regressions records)

let test_trend_regression_and_order () =
  (* records arrive out of time order; the series must still read 10 -> 11,
     and the QoR move is a Regression under Snapshot.compare's rules *)
  let r0 = sample_record ~time:1000.0 10.0 in
  let r1 = sample_record ~time:2000.0 11.0 in
  let records = [ r1; r0 ] in
  let series = Trend.analyze ~metric:"qor.area_um2" records in
  (match series with
  | [ s ] ->
    Alcotest.(check (list (float 1e-9))) "points in time order" [ 10.0; 11.0 ]
      (List.map (fun p -> p.Trend.p_value) s.Trend.sr_points);
    Alcotest.(check string) "flagged" "REGRESSION" (Trend.status_name s.Trend.sr_status)
  | l -> Alcotest.fail (Printf.sprintf "expected one series, got %d" (List.length l)));
  Alcotest.(check bool) "has_regressions" true (Trend.has_regressions records);
  let regs = Trend.regressions records in
  Alcotest.(check bool) "pair ids reported" true
    (List.exists (fun (a, b, _) -> a = r0.Ledger.r_id && b = r1.Ledger.r_id) regs);
  check_contains "rendered regression names the pair" r0.Ledger.r_id
    (Trend.render_regressions records)

let test_trend_filters_and_json () =
  let records = List.map (fun t -> sample_record ~time:t 10.0) [ 1.0; 2.0 ] in
  let all = Trend.analyze ~qor_only:false records in
  Alcotest.(check bool) "counters included" true
    (List.exists (fun s -> s.Trend.sr_field = "counter.sta.arrival_evals") all);
  Alcotest.(check bool) "stage wall-clock included" true
    (List.exists (fun s -> s.Trend.sr_field = "stage_ms.replace") all);
  let only_counters = Trend.analyze ~metric:"counter." records in
  Alcotest.(check bool) "metric substring filters" true
    (only_counters <> []
    && List.for_all (fun s -> contains ~needle:"counter." s.Trend.sr_field) only_counters);
  Alcotest.(check (list reject)) "workload filter can empty"
    []
    (Trend.analyze ~workload:"nonexistent" records);
  let json = Trend.to_json (Trend.analyze records) in
  (match Obs_json.parse json with
  | Error e -> Alcotest.fail e
  | Ok (Obs_json.Arr items) ->
    Alcotest.(check bool) "one object per series" true (items <> [])
  | Ok _ -> Alcotest.fail "trend json is not an array");
  check_contains "render mentions the workload" "circuit_a/improved"
    (Trend.render (Trend.analyze records))

let test_trend_of_snapshot_dir () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "smt_trend_%d" (Unix.getpid ()))
  in
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let snap tag v =
        Snapshot.make ~tag
          [ Snapshot.workload ~name:"w" ~qor:[ ("x", v) ] ~counters:[] ~stage_ms:[] ]
      in
      Snapshot.write (Filename.concat dir "a.json") (snap "a" 1.0);
      Snapshot.write (Filename.concat dir "b.json") (snap "b" 1.0);
      match Trend.of_snapshot_dir dir with
      | Error e -> Alcotest.fail e
      | Ok records -> (
        Alcotest.(check int) "one record per snapshot" 2 (List.length records);
        match Trend.analyze records with
        | [ s ] ->
          Alcotest.(check (list (float 1e-9))) "filename order gives the times"
            [ 0.0; 1.0 ]
            (List.map (fun p -> p.Trend.p_time) s.Trend.sr_points)
        | l -> Alcotest.fail (Printf.sprintf "expected one series, got %d" (List.length l))))

(* ------------------------------------------------------------------ *)
(* Flame: folded stacks from trace spans                               *)
(* ------------------------------------------------------------------ *)

let flame_of_string s =
  match Obs_json.parse s with
  | Error e -> Alcotest.fail e
  | Ok doc -> (
    match Flame.of_trace_json doc with Error e -> Alcotest.fail e | Ok folded -> folded)

let trace_json spans =
  Printf.sprintf {|{"traceEvents":[%s]}|}
    (String.concat ","
       (List.map
          (fun (name, ts, dur, tid) ->
            Printf.sprintf
              {|{"name":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":%d}|}
              name ts dur tid)
          spans))

let test_flame_nesting_and_self_time () =
  let folded =
    flame_of_string
      (trace_json
         [
           ("root", 0.0, 100.0, 1);
           ("child1", 10.0, 20.0, 1);
           ("child2", 40.0, 20.0, 1);
         ])
  in
  Alcotest.(check (float 1e-6)) "root self = dur - children" 60.0
    (List.assoc "root" folded);
  Alcotest.(check (float 1e-6)) "nested path" 20.0 (List.assoc "root;child1" folded);
  Alcotest.(check (float 1e-6)) "second child same depth" 20.0
    (List.assoc "root;child2" folded)

let test_flame_adjacent_stages_are_siblings () =
  (* mark-delimited stages print ts and dur with independent %.3f rounding,
     so a successor can appear to start 1 lsb inside its predecessor: the
     eps containment test must still read them as siblings *)
  let folded =
    flame_of_string
      (trace_json [ ("a", 0.0, 50.0, 1); ("b", 49.999, 50.0, 1) ])
  in
  Alcotest.(check bool) "no false nesting" false (List.mem_assoc "a;b" folded);
  Alcotest.(check (float 1e-6)) "a keeps its own time" 50.0 (List.assoc "a" folded);
  Alcotest.(check (float 1e-6)) "b keeps its own time" 50.0 (List.assoc "b" folded)

let test_flame_merges_across_tids () =
  let folded =
    flame_of_string
      (trace_json [ ("job", 0.0, 10.0, 2); ("job", 0.0, 15.0, 3) ])
  in
  Alcotest.(check (float 1e-6)) "identical paths merge across tids" 25.0
    (List.assoc "job" folded)

let test_flame_render () =
  let out =
    Flame.render [ ("a;b", 12.4); ("c", 3.6); ("d", 0.2) ]
  in
  Alcotest.(check string) "integer-microsecond lines, sub-1us dropped"
    "a;b 12\nc 4\n" out

(* ------------------------------------------------------------------ *)
(* Snapshot: workload churn reporting                                  *)
(* ------------------------------------------------------------------ *)

let test_snapshot_workload_churn () =
  let w name =
    Snapshot.workload ~name ~qor:[ ("x", 1.0) ] ~counters:[] ~stage_ms:[]
  in
  let baseline = Snapshot.make ~tag:"b" [ w "kept"; w "gone" ] in
  let current = Snapshot.make ~tag:"c" [ w "kept"; w "fresh" ] in
  let deltas = Snapshot.compare ~baseline ~current in
  let find wname =
    List.find_opt
      (fun (d : Snapshot.delta) ->
        d.Snapshot.d_workload = wname && d.Snapshot.d_field = "workload")
      deltas
  in
  (match find "gone" with
  | None -> Alcotest.fail "disappeared workload not reported"
  | Some d ->
    Alcotest.(check bool) "disappearance is a regression" true
      (d.Snapshot.d_severity = Snapshot.Regression);
    Alcotest.(check bool) "no current value" true (d.Snapshot.d_current = None));
  (match find "fresh" with
  | None -> Alcotest.fail "new workload not reported"
  | Some d ->
    Alcotest.(check bool) "addition is advisory" true
      (d.Snapshot.d_severity = Snapshot.Advisory);
    Alcotest.(check bool) "no baseline value" true (d.Snapshot.d_baseline = None));
  let summary = Snapshot.render deltas in
  check_contains "summary counts disappearances" "disappeared" summary;
  check_contains "summary counts additions" "new workload" summary

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "telemetry"
    [
      ( "quantiles",
        [
          Alcotest.test_case "linear interpolation" `Quick test_quantile_interpolation;
          Alcotest.test_case "empty and +inf buckets" `Quick test_quantile_edges;
          Alcotest.test_case "before/after hit deltas" `Quick
            test_quantile_of_hits_delta;
          Alcotest.test_case "snapshot and json expose p50/p90/p99" `Quick
            test_snapshot_and_json_quantiles;
        ] );
      ( "prof",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_prof_disabled_is_noop;
          Alcotest.test_case "span records allocation" `Quick
            test_prof_span_records_allocation;
          Alcotest.test_case "collect/merge additive" `Quick
            test_prof_collect_merge_additive;
          Alcotest.test_case "stats json round-trip" `Quick
            test_prof_stats_json_roundtrip;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "line round-trip" `Quick test_ledger_line_roundtrip;
          Alcotest.test_case "deterministic ids" `Quick test_ledger_id_deterministic;
          Alcotest.test_case "truncated tail tolerated" `Quick
            test_ledger_truncated_tail;
          Alcotest.test_case "gc --keep and find" `Quick test_ledger_gc_keep_and_find;
          Alcotest.test_case "stale lock broken by age" `Quick
            test_ledger_stale_lock_broken;
          Alcotest.test_case "SMT_LOCK_STALE_MS overrides threshold" `Quick
            test_ledger_stale_lock_threshold_env;
        ] );
      ( "trend",
        [
          Alcotest.test_case "steady series" `Quick test_trend_steady;
          Alcotest.test_case "regression across pairs, time order" `Quick
            test_trend_regression_and_order;
          Alcotest.test_case "filters and json" `Quick test_trend_filters_and_json;
          Alcotest.test_case "snapshot directory source" `Quick
            test_trend_of_snapshot_dir;
        ] );
      ( "flame",
        [
          Alcotest.test_case "nesting and self time" `Quick
            test_flame_nesting_and_self_time;
          Alcotest.test_case "adjacent stages stay siblings" `Quick
            test_flame_adjacent_stages_are_siblings;
          Alcotest.test_case "cross-tid merge" `Quick test_flame_merges_across_tids;
          Alcotest.test_case "folded render" `Quick test_flame_render;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "workload churn reported" `Quick
            test_snapshot_workload_churn;
        ] );
    ]
