(* Tests for the observability layer: Trace spans and Chrome-trace export,
   the Metrics registry, and Log level handling.

   The trace tests validate the exported JSON with a small recursive-descent
   parser (no JSON library in the dependency set) — well-formedness here
   means "parses, and every event is a complete X event with sane
   timestamps", which is exactly what Perfetto requires to load it. *)

module Trace = Smt_obs.Trace
module Metrics = Smt_obs.Metrics
module Log = Smt_obs.Log
module Obs_json = Smt_obs.Obs_json

(* ------------------------------------------------------------------ *)
(* A minimal JSON parser, for validating emitted documents             *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos else fail (Printf.sprintf "expected %c" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      incr pos;
      skip_ws ()
    | _ -> ()
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' ->
          incr pos;
          Buffer.contents b
        | '\\' ->
          incr pos;
          if !pos >= n then fail "dangling escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
            if !pos + 4 >= n then fail "truncated \\u escape";
            (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
            | Some code ->
              pos := !pos + 4;
              if code < 128 then Buffer.add_char b (Char.chr code)
              else Buffer.add_char b '?' (* lossy is fine for validation *)
            | None -> fail "bad \\u escape")
          | _ -> fail "unknown escape");
          incr pos;
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> Str (parse_string ())
    | Some 't' -> lit "true" (Bool true)
    | Some 'f' -> lit "false" (Bool false)
    | Some 'n' -> lit "null" Null
    | Some _ -> number ()
    | None -> fail "unexpected end of input"
  and lit word v =
    let k = String.length word in
    if !pos + k <= n && String.sub s !pos k = word then begin
      pos := !pos + k;
      v
    end
    else fail ("expected " ^ word)
  and number () =
    let start = !pos in
    let is_num c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num s.[!pos] do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      incr pos;
      Arr []
    end
    else begin
      let items = ref [ value () ] in
      skip_ws ();
      while peek () = Some ',' do
        incr pos;
        items := value () :: !items;
        skip_ws ()
      done;
      expect ']';
      Arr (List.rev !items)
    end
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      incr pos;
      Obj []
    end
    else begin
      let field () =
        skip_ws ();
        let k = parse_string () in
        skip_ws ();
        expect ':';
        let v = value () in
        (k, v)
      in
      let fields = ref [ field () ] in
      skip_ws ();
      while peek () = Some ',' do
        incr pos;
        fields := field () :: !fields;
        skip_ws ()
      done;
      expect '}';
      Obj (List.rev !fields)
    end
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

(* A little busy-work so spans have nonzero width even on coarse clocks. *)
let spin () =
  let acc = ref 0.0 in
  for i = 1 to 20_000 do
    acc := !acc +. sqrt (float_of_int i)
  done;
  ignore !acc

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_disabled_sink_records_nothing () =
  Trace.disable ();
  Trace.clear ();
  let r = Trace.with_span "ghost" (fun () -> 42) in
  Trace.complete ~name:"ghost2" ~ts_us:0.0 ~dur_us:1.0 ();
  Trace.instant "ghost3";
  Alcotest.(check int) "value passes through" 42 r;
  Alcotest.(check int) "no events recorded" 0 (List.length (Trace.events ()))

let test_span_nesting_and_durations () =
  Trace.enable ();
  Trace.clear ();
  let r =
    Trace.with_span "outer" (fun () ->
        spin ();
        let inner = Trace.with_span "inner" (fun () -> spin (); "ok") in
        spin ();
        inner)
  in
  Trace.disable ();
  Alcotest.(check string) "value passes through" "ok" r;
  match Trace.events () with
  | [ inner; outer ] ->
    (* completion order: inner finishes first *)
    Alcotest.(check string) "inner first" "inner" inner.Trace.ev_name;
    Alcotest.(check string) "outer second" "outer" outer.Trace.ev_name;
    Alcotest.(check int) "outer at depth 0" 0 outer.Trace.ev_depth;
    Alcotest.(check int) "inner at depth 1" 1 inner.Trace.ev_depth;
    Alcotest.(check bool) "durations non-negative" true
      (inner.Trace.ev_dur_us >= 0.0 && outer.Trace.ev_dur_us >= 0.0);
    Alcotest.(check bool) "inner starts after outer" true
      (inner.Trace.ev_ts_us >= outer.Trace.ev_ts_us);
    Alcotest.(check bool) "inner contained in outer" true
      (inner.Trace.ev_ts_us +. inner.Trace.ev_dur_us
      <= outer.Trace.ev_ts_us +. outer.Trace.ev_dur_us +. 0.5);
    Alcotest.(check bool) "inner no longer than outer" true
      (inner.Trace.ev_dur_us <= outer.Trace.ev_dur_us +. 0.5)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_span_survives_exception () =
  Trace.enable ();
  Trace.clear ();
  (try Trace.with_span "raiser" (fun () -> failwith "boom") with Failure _ -> ());
  let after = Trace.with_span "after" (fun () -> ()) in
  Trace.disable ();
  Alcotest.(check unit) "subsequent span still works" () after;
  match Trace.events () with
  | [ raiser; after ] ->
    Alcotest.(check string) "raising span recorded" "raiser" raiser.Trace.ev_name;
    Alcotest.(check (option string)) "flagged as raised" (Some "raised")
      (List.assoc_opt "error" raiser.Trace.ev_args);
    Alcotest.(check int) "depth restored for later spans" 0 after.Trace.ev_depth
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_now_us_monotone () =
  let a = Trace.now_us () in
  spin ();
  let b = Trace.now_us () in
  Alcotest.(check bool) "clock does not go backwards" true (b >= a)

let test_chrome_trace_json_wellformed () =
  Trace.enable ();
  Trace.clear ();
  Trace.with_span "alpha" ~args:[ ("k", "v\"with\\quotes\n") ] (fun () ->
      spin ();
      Trace.with_span "beta" spin);
  Trace.complete ~name:"explicit stage" ~ts_us:(Trace.now_us ()) ~dur_us:12.5 ();
  Trace.disable ();
  let doc = parse_json (Trace.to_json ()) in
  match field "traceEvents" doc with
  | Some (Arr events) ->
    Alcotest.(check int) "all events exported" 3 (List.length events);
    List.iter
      (fun ev ->
        (match field "ph" ev with
        | Some (Str "X") -> ()
        | _ -> Alcotest.fail "every event must be a complete X event");
        (match (field "ts" ev, field "dur" ev) with
        | Some (Num ts), Some (Num dur) ->
          Alcotest.(check bool) "sane timestamps" true (ts >= 0.0 && dur >= 0.0)
        | _ -> Alcotest.fail "ts/dur must be numbers");
        match field "name" ev with
        | Some (Str name) -> Alcotest.(check bool) "non-empty name" true (name <> "")
        | _ -> Alcotest.fail "name must be a string")
      events
  | _ -> Alcotest.fail "traceEvents array missing"

(* The same export, this time validated through the library's own parser
   (Obs_json) instead of the local one, with the structural property
   Perfetto renders from: parent spans contain their children, siblings
   run one after the other. *)
let test_trace_export_nesting_consistent () =
  Trace.enable ();
  Trace.clear ();
  Trace.with_span "outer" (fun () ->
      spin ();
      Trace.with_span "mid" (fun () ->
          spin ();
          Trace.with_span "inner" spin);
      Trace.with_span "sibling" spin);
  Trace.disable ();
  let doc = Obs_json.parse_exn (Trace.to_json ()) in
  let events =
    match Obs_json.member "traceEvents" doc with
    | Some (Obs_json.Arr evs) -> evs
    | _ -> Alcotest.fail "traceEvents array missing"
  in
  Alcotest.(check int) "all four spans exported" 4 (List.length events);
  let str name ev =
    match Option.bind (Obs_json.member name ev) Obs_json.to_str with
    | Some s -> s
    | None -> Alcotest.failf "missing string field %S" name
  in
  let num name ev =
    match Option.bind (Obs_json.member name ev) Obs_json.to_num with
    | Some f -> f
    | None -> Alcotest.failf "missing numeric field %S" name
  in
  List.iter
    (fun ev ->
      Alcotest.(check string) "complete X event" "X" (str "ph" ev);
      Alcotest.(check bool) "timestamp non-negative" true (num "ts" ev >= 0.0);
      Alcotest.(check bool) "duration non-negative" true (num "dur" ev >= 0.0))
    events;
  let find name =
    match List.find_opt (fun ev -> str "name" ev = name) events with
    | Some ev -> ev
    | None -> Alcotest.failf "span %S not exported" name
  in
  let eps = 0.5 in
  let starts ev = num "ts" ev in
  let ends ev = num "ts" ev +. num "dur" ev in
  let contains outer inner =
    starts outer <= starts inner +. eps && ends inner <= ends outer +. eps
  in
  let outer = find "outer" and mid = find "mid" in
  let inner = find "inner" and sibling = find "sibling" in
  Alcotest.(check bool) "outer contains mid" true (contains outer mid);
  Alcotest.(check bool) "mid contains inner" true (contains mid inner);
  Alcotest.(check bool) "outer contains sibling" true (contains outer sibling);
  Alcotest.(check bool) "siblings do not overlap" true (ends mid <= starts sibling +. eps)

(* ------------------------------------------------------------------ *)
(* Obs_json                                                            *)
(* ------------------------------------------------------------------ *)

let test_obs_json_roundtrip () =
  let doc =
    Obs_json.obj
      [
        ("s", Obs_json.str "a\"b\\c\nd\tcontrol:\001");
        ("n", Obs_json.num_exact 0.1);
        ("inf", Obs_json.num infinity);
        ("t", Obs_json.boolean true);
        ("l", Obs_json.arr [ Obs_json.num 1.5; Obs_json.str "x"; "null" ]);
        ("o", Obs_json.obj []);
      ]
  in
  match Obs_json.parse doc with
  | Error e -> Alcotest.fail e
  | Ok v ->
    Alcotest.(check (option string)) "escaped string round-trips"
      (Some "a\"b\\c\nd\tcontrol:\001")
      (Option.bind (Obs_json.member "s" v) Obs_json.to_str);
    (match Option.bind (Obs_json.member "n" v) Obs_json.to_num with
    | Some f -> Alcotest.(check bool) "num_exact round-trips exactly" true (f = 0.1)
    | None -> Alcotest.fail "n missing");
    (match Obs_json.member "inf" v with
    | Some Obs_json.Null -> ()
    | _ -> Alcotest.fail "non-finite emitted as null");
    (match Obs_json.member "t" v with
    | Some (Obs_json.Bool true) -> ()
    | _ -> Alcotest.fail "boolean");
    (match Obs_json.member "l" v with
    | Some (Obs_json.Arr [ Obs_json.Num _; Obs_json.Str "x"; Obs_json.Null ]) -> ()
    | _ -> Alcotest.fail "array shape");
    match Obs_json.member "o" v with
    | Some (Obs_json.Obj []) -> ()
    | _ -> Alcotest.fail "empty object"

let test_obs_json_num_exact () =
  List.iter
    (fun f ->
      match Obs_json.parse (Obs_json.num_exact f) with
      | Ok (Obs_json.Num g) ->
        Alcotest.(check bool) (Printf.sprintf "%h round-trips" f) true (f = g)
      | _ -> Alcotest.failf "%h did not parse back as a number" f)
    [ 0.1; 1.0 /. 3.0; 1e300; -1.5e-300; 12345.678901234567; 0.0; -42.0 ]

let test_obs_json_rejects_malformed () =
  List.iter
    (fun s ->
      match Obs_json.parse s with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,2] trailing"; "{\"a\":}"; "nul"; "\"unterminated"; "{'a':1}" ];
  match Obs_json.parse_exn "{" with
  | exception Obs_json.Parse_error _ -> ()
  | _ -> Alcotest.fail "parse_exn did not raise"

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_counter_accumulation () =
  let c = Metrics.counter "test_obs.counter" in
  let base = Metrics.counter_value c in
  Metrics.incr c;
  Metrics.incr ~by:41 c;
  Alcotest.(check int) "accumulates" (base + 42) (Metrics.counter_value c);
  Alcotest.(check bool) "registration is idempotent" true
    (Metrics.counter_value (Metrics.counter "test_obs.counter") = base + 42)

let test_gauge_set_add () =
  let g = Metrics.gauge "test_obs.gauge" in
  Metrics.set g 2.5;
  Metrics.add g 1.0;
  Alcotest.(check (float 1e-9)) "set then add" 3.5 (Metrics.gauge_value g)

let test_histogram_accumulation () =
  let h = Metrics.histogram ~buckets:[ 1.0; 10.0; 100.0 ] "test_obs.hist" in
  List.iter (Metrics.observe h) [ 0.5; 5.0; 50.0; 500.0 ];
  Alcotest.(check int) "count" 4 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 555.5 (Metrics.histogram_sum h);
  let snap = Metrics.snapshot () in
  Alcotest.(check (option (float 1e-9))) "snapshot exposes count" (Some 4.0)
    (List.assoc_opt "test_obs.hist.count" snap);
  Alcotest.(check (option (float 1e-9))) "snapshot exposes sum" (Some 555.5)
    (List.assoc_opt "test_obs.hist.sum" snap)

let test_snapshot_sorted () =
  ignore (Metrics.counter "test_obs.zz");
  ignore (Metrics.counter "test_obs.aa");
  let names = List.map fst (Metrics.snapshot ()) in
  Alcotest.(check (list string)) "sorted by name" (List.sort compare names) names

let test_metrics_json_parses () =
  ignore (Metrics.counter "test_obs.json_counter");
  Metrics.set (Metrics.gauge "test_obs.json_gauge") 1.25;
  ignore (Metrics.histogram "test_obs.json_hist");
  let doc = parse_json (Metrics.to_json ()) in
  (match field "counters" doc with
  | Some (Obj counters) ->
    Alcotest.(check bool) "counter present" true
      (List.mem_assoc "test_obs.json_counter" counters)
  | _ -> Alcotest.fail "counters object missing");
  (match field "gauges" doc with
  | Some (Obj gauges) -> (
    match List.assoc_opt "test_obs.json_gauge" gauges with
    | Some (Num v) -> Alcotest.(check (float 1e-9)) "gauge value" 1.25 v
    | _ -> Alcotest.fail "gauge missing or not a number")
  | _ -> Alcotest.fail "gauges object missing");
  match field "histograms" doc with
  | Some (Obj hists) -> (
    match List.assoc_opt "test_obs.json_hist" hists with
    | Some h -> (
      match field "buckets" h with
      | Some (Arr (_ :: _)) -> ()
      | _ -> Alcotest.fail "histogram buckets missing")
    | None -> Alcotest.fail "histogram missing")
  | _ -> Alcotest.fail "histograms object missing"

let test_reset_zeroes () =
  let c = Metrics.counter "test_obs.reset_counter" in
  let g = Metrics.gauge "test_obs.reset_gauge" in
  let h = Metrics.histogram "test_obs.reset_hist" in
  Metrics.incr ~by:7 c;
  Metrics.set g 9.0;
  Metrics.observe h 3.0;
  Metrics.reset ();
  Alcotest.(check int) "counter zeroed" 0 (Metrics.counter_value c);
  Alcotest.(check (float 1e-9)) "gauge zeroed" 0.0 (Metrics.gauge_value g);
  Alcotest.(check int) "histogram zeroed" 0 (Metrics.histogram_count h)

(* ------------------------------------------------------------------ *)
(* Log                                                                 *)
(* ------------------------------------------------------------------ *)

let test_log_level_parsing () =
  List.iter
    (fun (s, expected) ->
      match Log.level_of_string s with
      | Ok l -> Alcotest.(check string) s (Log.level_name expected) (Log.level_name l)
      | Error e -> Alcotest.fail e)
    [
      ("debug", Log.Debug); ("INFO", Log.Info); ("Warn", Log.Warn); ("warning", Log.Warn);
      ("error", Log.Error); ("off", Log.Off); ("none", Log.Off);
    ];
  match Log.level_of_string "shout" with
  | Ok _ -> Alcotest.fail "bogus level accepted"
  | Error _ -> ()

let test_log_level_gating () =
  let saved = Log.level () in
  Log.set_level Log.Warn;
  Alcotest.(check bool) "debug gated below warn" false (Log.enabled Log.Debug);
  Alcotest.(check bool) "warn passes at warn" true (Log.enabled Log.Warn);
  Alcotest.(check bool) "error passes at warn" true (Log.enabled Log.Error);
  Log.set_level Log.Off;
  Alcotest.(check bool) "everything gated at off" false (Log.enabled Log.Error);
  Log.set_level saved

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "disabled sink records nothing" `Quick
            test_disabled_sink_records_nothing;
          Alcotest.test_case "span nesting & durations" `Quick test_span_nesting_and_durations;
          Alcotest.test_case "span survives exception" `Quick test_span_survives_exception;
          Alcotest.test_case "clock monotone" `Quick test_now_us_monotone;
          Alcotest.test_case "chrome trace JSON well-formed" `Quick
            test_chrome_trace_json_wellformed;
          Alcotest.test_case "exported nesting consistent" `Quick
            test_trace_export_nesting_consistent;
        ] );
      ( "obs-json",
        [
          Alcotest.test_case "emit/parse round-trip" `Quick test_obs_json_roundtrip;
          Alcotest.test_case "num_exact round-trips" `Quick test_obs_json_num_exact;
          Alcotest.test_case "rejects malformed input" `Quick test_obs_json_rejects_malformed;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter accumulation" `Quick test_counter_accumulation;
          Alcotest.test_case "gauge set/add" `Quick test_gauge_set_add;
          Alcotest.test_case "histogram accumulation" `Quick test_histogram_accumulation;
          Alcotest.test_case "snapshot sorted" `Quick test_snapshot_sorted;
          Alcotest.test_case "metrics JSON parses" `Quick test_metrics_json_parses;
          Alcotest.test_case "reset zeroes values" `Quick test_reset_zeroes;
        ] );
      ( "log",
        [
          Alcotest.test_case "level parsing" `Quick test_log_level_parsing;
          Alcotest.test_case "level gating" `Quick test_log_level_gating;
        ] );
    ]
