(* Tests for the evaluation circuits and every generator in the suite. *)

module Netlist = Smt_netlist.Netlist
module Check = Smt_check.Drc
module Nl_stats = Smt_netlist.Nl_stats
module Sta = Smt_sta.Sta
module Simulator = Smt_sim.Simulator
module Logic = Smt_sim.Logic
module Library = Smt_cell.Library
module Generators = Smt_circuits.Generators
module Suite = Smt_circuits.Suite
module Flow = Smt_core.Flow

let lib = Library.default ()

let test_every_suite_circuit_validates () =
  List.iter
    (fun (name, g) ->
      let nl = g lib in
      Alcotest.(check (list string)) (name ^ " validates") [] (Check.validate nl);
      Alcotest.(check bool) (name ^ " simulates") true (Simulator.create nl |> fun _ -> true))
    Suite.all

let test_generators_deterministic () =
  List.iter
    (fun (name, g) ->
      let a = Smt_netlist.Writer.to_string (g lib) in
      let b = Smt_netlist.Writer.to_string (g lib) in
      Alcotest.(check bool) (name ^ " deterministic") true (String.equal a b))
    Suite.all

let test_circuit_sizes () =
  let size name =
    let nl = List.assoc name Suite.all lib in
    (Nl_stats.compute nl).Nl_stats.instances
  in
  Alcotest.(check bool) "circuit A is substantial" true (size "circuit_a" > 1000);
  Alcotest.(check bool) "circuit B is substantial" true (size "circuit_b" > 500);
  Alcotest.(check bool) "soc fuses three blocks" true (size "soc" > 450)

let test_circuit_a_more_critical_than_b () =
  (* the premise of the Table-1 rows: A is datapath-like (most cells stay
     low-Vth/MT), B has more slack to harvest *)
  let frac name =
    let nl = List.assoc name Suite.all lib in
    let r = Flow.run Flow.Improved_smt nl in
    let stats = Nl_stats.compute nl in
    float_of_int r.Flow.n_mt_cells
    /. float_of_int stats.Nl_stats.combinational
  in
  Alcotest.(check bool) "A's MT share larger than B's" true
    (frac "circuit_a" > frac "circuit_b")

let test_all_paths_registered_in_pipeline () =
  let nl = Generators.pipeline ~name:"p" ~stages:2 ~width:6 ~stage_depth:3 lib in
  (* every combinational cell sits between register banks: no PI-to-PO
     combinational path except the final output buffers *)
  let sta = Sta.analyze (Sta.config ~clock_period:1e5 ()) nl in
  List.iter
    (fun (ep : Sta.endpoint) ->
      match ep.Sta.kind with
      | Sta.Primary_output _ ->
        (* PO arrival = clk->q + buffer only: well under one stage of logic *)
        Alcotest.(check bool) "PO fed straight from a register" true (ep.Sta.arrival < 100.0)
      | Sta.Ff_data _ -> ())
    (Sta.endpoints sta)

let test_layered_depth_controls_criticality () =
  let crit depth =
    let nl =
      Generators.layered ~seed:3 ~name:"l" ~inputs:8 ~outputs:4 ~width:8 ~depth lib
    in
    let sta = Sta.analyze (Sta.config ~clock_period:1e6 ()) nl in
    1e6 -. Sta.wns sta
  in
  Alcotest.(check bool) "deeper layers, longer critical path" true (crit 12 > crit 3)

let test_multiplier_scales () =
  List.iter
    (fun bits ->
      let nl = Generators.multiplier ~name:(Printf.sprintf "m%d" bits) ~bits lib in
      Alcotest.(check (list string)) "validates" [] (Check.validate nl);
      let stats = Nl_stats.compute nl in
      (* 2*bits product registers + 2*bits operand registers *)
      Alcotest.(check int) "register count" (4 * bits) stats.Nl_stats.sequential)
    [ 2; 4; 6; 10 ]

let test_alu_ops () =
  (* exhaustive over one operand pair for all four opcodes *)
  let nl = Generators.alu ~name:"alu4" ~bits:4 lib in
  let sim = Simulator.create nl in
  let run_op op0 op1 x y =
    Simulator.reset sim;
    let vec =
      [ ("op0", Logic.of_bool op0); ("op1", Logic.of_bool op1) ]
      @ List.init 4 (fun i -> (Printf.sprintf "a%d" i, Logic.of_bool (x land (1 lsl i) <> 0)))
      @ List.init 4 (fun i -> (Printf.sprintf "b%d" i, Logic.of_bool (y land (1 lsl i) <> 0)))
    in
    Simulator.set_inputs sim vec;
    Simulator.propagate sim;
    Simulator.clock_edge sim;
    Simulator.propagate sim;
    Simulator.clock_edge sim;
    Simulator.propagate sim;
    let outs = Simulator.output_values sim in
    List.fold_left
      (fun acc i ->
        match List.assoc (Printf.sprintf "y%d" i) outs with
        | Logic.T -> acc lor (1 lsl i)
        | Logic.F | Logic.X -> acc)
      0 [ 0; 1; 2; 3 ]
  in
  let x = 0b1011 and y = 0b0110 in
  (* mux order: op1 selects between (op0 ? and : add) and (op0 ? xor : or) *)
  Alcotest.(check int) "add" ((x + y) land 15) (run_op false false x y);
  Alcotest.(check int) "and" (x land y) (run_op true false x y);
  Alcotest.(check int) "or" (x lor y) (run_op false true x y);
  Alcotest.(check int) "xor" (x lxor y) (run_op true true x y)

let test_c17_is_canonical () =
  let nl = Generators.c17 lib in
  let stats = Nl_stats.compute nl in
  Alcotest.(check int) "6 nand gates" 6 stats.Nl_stats.combinational;
  Alcotest.(check int) "11 nets (5 PI + 2 PO + 4 internal)" 11 stats.Nl_stats.nets

let test_flow_survives_every_registered_circuit () =
  (* the whole improved pipeline must run on every circuit that has
     flip-flops and a clock; pure-comb ones only run the transform *)
  List.iter
    (fun (name, g) ->
      let nl = g lib in
      let has_clock = Netlist.clock_net nl <> None in
      if has_clock then begin
        let r = Flow.run Flow.Improved_smt nl in
        Alcotest.(check bool) (name ^ " flow report sane") true (r.Flow.area > 0.0)
      end)
    [ List.nth Suite.all 3 (* tiny *); List.nth Suite.all 8 (* counter *) ]

let () =
  Alcotest.run "smt_circuits"
    [
      ( "suite",
        [
          Alcotest.test_case "all validate" `Quick test_every_suite_circuit_validates;
          Alcotest.test_case "deterministic" `Quick test_generators_deterministic;
          Alcotest.test_case "sizes" `Quick test_circuit_sizes;
          Alcotest.test_case "A more critical than B" `Slow test_circuit_a_more_critical_than_b;
        ] );
      ( "generators",
        [
          Alcotest.test_case "pipeline registering" `Quick test_all_paths_registered_in_pipeline;
          Alcotest.test_case "layered depth" `Quick test_layered_depth_controls_criticality;
          Alcotest.test_case "multiplier scales" `Quick test_multiplier_scales;
          Alcotest.test_case "alu operations" `Quick test_alu_ops;
          Alcotest.test_case "c17 canonical" `Quick test_c17_is_canonical;
          Alcotest.test_case "flows run" `Quick test_flow_survives_every_registered_circuit;
        ] );
    ]
