module Netlist = Smt_netlist.Netlist
module Leakage = Smt_power.Leakage
module Bounce = Smt_power.Bounce
module Em = Smt_power.Em
module Activity = Smt_sim.Activity
module Func = Smt_cell.Func
module Vth = Smt_cell.Vth
module Cell = Smt_cell.Cell
module Tech = Smt_cell.Tech
module Library = Smt_cell.Library
module Generators = Smt_circuits.Generators

let lib = Library.default ()
let tech = Library.tech lib

let hv k = Library.variant lib k Vth.High Vth.Plain
let mtv k = Library.variant lib k Vth.Low Vth.Mt_vgnd

(* --- leakage accounting --- *)

let test_breakdown_sums () =
  let nl = Generators.multiplier ~name:"m" ~bits:5 lib in
  let b = Leakage.standby nl in
  let parts =
    b.Leakage.low_vth_logic +. b.Leakage.high_vth_logic +. b.Leakage.sequential
    +. b.Leakage.mt_residual +. b.Leakage.switches +. b.Leakage.embedded_mt
    +. b.Leakage.holders +. b.Leakage.infrastructure
  in
  Alcotest.(check (float 1e-6)) "parts sum to total" b.Leakage.total parts

let test_all_low_vth_is_leaky () =
  let nl = Generators.c17 lib in
  let b = Leakage.standby nl in
  Alcotest.(check bool) "dominated by low-vth" true
    (b.Leakage.low_vth_logic > 0.99 *. b.Leakage.total)

let test_hv_swap_reduces () =
  let nl = Generators.c17 lib in
  let before = (Leakage.standby nl).Leakage.total in
  Netlist.iter_insts nl (fun iid ->
      let c = Netlist.cell nl iid in
      Netlist.replace_cell nl iid (Library.variant lib c.Cell.kind Vth.High Vth.Plain));
  let after = (Leakage.standby nl).Leakage.total in
  Alcotest.(check bool) "much lower" true (after < before /. 20.0)

let test_mt_conversion_reduces () =
  let nl = Generators.c17 lib in
  let before = (Leakage.standby nl).Leakage.total in
  Netlist.iter_insts nl (fun iid ->
      let c = Netlist.cell nl iid in
      Netlist.replace_cell nl iid (Library.variant lib c.Cell.kind Vth.Low Vth.Mt_vgnd));
  let b = Leakage.standby nl in
  Alcotest.(check bool) "residual only" true (b.Leakage.total < before /. 20.0);
  Alcotest.(check (float 1e-9)) "classified as MT" b.Leakage.total b.Leakage.mt_residual

let test_active_vs_standby () =
  let nl = Generators.c17 lib in
  Netlist.iter_insts nl (fun iid ->
      let c = Netlist.cell nl iid in
      Netlist.replace_cell nl iid (Library.variant lib c.Cell.kind Vth.Low Vth.Mt_vgnd));
  (* MT saves in standby, not in active mode (logic stays powered) *)
  Alcotest.(check bool) "active >> standby for MT circuit" true
    (Leakage.active nl > 10.0 *. (Leakage.standby nl).Leakage.total)

(* --- currents and bounce --- *)

let mt_fixture n =
  let nl = Netlist.create ~name:"fx" ~lib in
  let mte = Netlist.add_input nl "MTE" in
  let a = Netlist.add_input nl "a" in
  let members =
    List.init n (fun i ->
        let z = Netlist.add_output nl (Printf.sprintf "z%d" i) in
        Netlist.add_inst nl ~name:(Printf.sprintf "m%d" i) (mtv Func.Nand2)
          [ ("A", a); ("B", a); ("Z", z) ])
  in
  (nl, mte, members)

let test_simultaneous_current () =
  let nl, _, members = mt_fixture 8 in
  let i1 = Bounce.simultaneous_current nl ~members:[ List.hd members ] in
  let i8 = Bounce.simultaneous_current nl ~members in
  Alcotest.(check bool) "grows with members" true (i8 > i1);
  (* single cell: exactly its peak *)
  Alcotest.(check (float 1e-9)) "single = peak" (mtv Func.Nand2).Cell.peak_current i1;
  (* diversity: far less than the sum of peaks *)
  Alcotest.(check bool) "less than worst-case sum" true
    (i8 < 8.0 *. (mtv Func.Nand2).Cell.peak_current);
  Alcotest.(check (float 1e-9)) "empty cluster" 0.0
    (Bounce.simultaneous_current nl ~members:[])

let test_sustained_below_simultaneous () =
  let nl, _, members = mt_fixture 10 in
  Alcotest.(check bool) "sustained <= simultaneous" true
    (Bounce.sustained_current nl ~members <= Bounce.simultaneous_current nl ~members)

let test_activity_reduces_current () =
  let nl = Generators.c17 lib in
  Netlist.iter_insts nl (fun iid ->
      let c = Netlist.cell nl iid in
      Netlist.replace_cell nl iid (Library.variant lib c.Cell.kind Vth.Low Vth.Mt_vgnd));
  let members = Netlist.live_insts nl in
  let act = Activity.estimate ~cycles:100 nl in
  let with_act = Bounce.simultaneous_current ~activity:act nl ~members in
  let without = Bounce.simultaneous_current nl ~members in
  (* default toggle assumption is 0.5, measured activity is typically lower *)
  Alcotest.(check bool) "measured activity tightens the estimate" true (with_act <= without)

let test_bounce_formula () =
  let b = Bounce.bounce_v tech ~switch_width:2.0 ~wire_length:0.0 ~current_ua:10.0 in
  let r = Tech.switch_resistance tech ~width:2.0 in
  Alcotest.(check (float 1e-9)) "I*R" (10.0 *. 1e-6 *. r) b;
  Alcotest.(check (float 1e-9)) "zero current" 0.0
    (Bounce.bounce_v tech ~switch_width:2.0 ~wire_length:100.0 ~current_ua:0.0);
  let with_wire = Bounce.bounce_v tech ~switch_width:2.0 ~wire_length:300.0 ~current_ua:10.0 in
  Alcotest.(check bool) "wire adds bounce" true (with_wire > b)

let test_wider_switch_less_bounce () =
  let narrow = Bounce.bounce_v tech ~switch_width:1.0 ~wire_length:50.0 ~current_ua:20.0 in
  let wide = Bounce.bounce_v tech ~switch_width:8.0 ~wire_length:50.0 ~current_ua:20.0 in
  Alcotest.(check bool) "wider is quieter" true (wide < narrow)

let test_analyze_clusters () =
  let nl, mte, members = mt_fixture 6 in
  let sw = Netlist.add_inst nl ~name:"sw0" (Library.switch lib ~width:4.0) [ ("MTE", mte) ] in
  List.iter (fun m -> Netlist.set_vgnd_switch nl m (Some sw)) members;
  let reports = Bounce.analyze nl ~wire_length_of:(fun _ -> 40.0) in
  (match reports with
  | [ r ] ->
    Alcotest.(check int) "member count" 6 r.Bounce.members;
    Alcotest.(check bool) "bounce positive" true (r.Bounce.bounce > 0.0);
    Alcotest.(check (float 1e-9)) "wire length passed through" 40.0 r.Bounce.wire_length
  | _ -> Alcotest.fail "expected one cluster");
  Alcotest.(check bool) "worst >= 0" true (Bounce.worst reports >= 0.0)

let test_bounce_of_fn () =
  let nl, mte, members = mt_fixture 4 in
  (* undersized switch: clearly bouncing *)
  let sw = Netlist.add_inst nl ~name:"sw0" (Library.switch lib ~width:0.2) [ ("MTE", mte) ] in
  List.iter (fun m -> Netlist.set_vgnd_switch nl m (Some sw)) members;
  let reports = Bounce.analyze nl ~wire_length_of:(fun _ -> 0.0) in
  let f = Bounce.bounce_of_fn reports nl in
  List.iter
    (fun m -> Alcotest.(check bool) "member sees cluster bounce" true (f m > 0.0))
    members;
  Alcotest.(check int) "violations counted" 1 (Bounce.violations reports);
  (* a plain cell sees none *)
  let z = Netlist.add_output nl "zz" in
  let plain =
    Netlist.add_inst nl ~name:"p" (hv Func.Inv)
      [ ("A", Option.get (Netlist.find_net nl "a")); ("Z", z) ]
  in
  Alcotest.(check (float 1e-9)) "plain sees zero" 0.0 (f plain)

let test_embedded_bounce_at_limit () =
  let nl = Netlist.create ~name:"e" ~lib in
  let a = Netlist.add_input nl "a" in
  let z = Netlist.add_output nl "z" in
  let mte = Netlist.add_input nl "MTE" in
  let emb = Library.variant lib Func.Nand2 Vth.Low Vth.Mt_embedded in
  let g = Netlist.add_inst nl ~name:"g" emb [ ("A", a); ("B", a); ("Z", z); ("MTE", mte) ] in
  let f = Bounce.bounce_of_fn [] nl in
  let b = f g in
  Alcotest.(check bool) "embedded bounce positive" true (b > 0.0);
  Alcotest.(check bool) "within the limit (guardbanded)" true
    (b <= tech.Tech.bounce_limit +. 1e-9)

(* --- dynamic power --- *)

module Dynamic = Smt_power.Dynamic

let test_dynamic_scales_with_frequency () =
  let nl = Generators.multiplier ~name:"dp" ~bits:5 lib in
  let slow = Dynamic.estimate ~clock_mhz:100.0 nl in
  let fast = Dynamic.estimate ~clock_mhz:400.0 nl in
  Alcotest.(check (float 1e-9)) "switching linear in f"
    (4.0 *. slow.Dynamic.switching_mw) fast.Dynamic.switching_mw;
  Alcotest.(check (float 1e-9)) "leakage floor frequency-independent"
    slow.Dynamic.leakage_mw fast.Dynamic.leakage_mw;
  Alcotest.(check (float 1e-9)) "total adds up"
    (fast.Dynamic.switching_mw +. fast.Dynamic.leakage_mw) fast.Dynamic.total_mw

let test_dynamic_with_activity () =
  let nl = Generators.multiplier ~name:"dq" ~bits:5 lib in
  let act = Activity.estimate ~cycles:64 nl in
  let measured = Dynamic.estimate ~activity:act ~clock_mhz:200.0 nl in
  let assumed = Dynamic.estimate ~clock_mhz:200.0 nl in
  Alcotest.(check bool) "both positive" true
    (measured.Dynamic.switching_mw > 0.0 && assumed.Dynamic.switching_mw > 0.0)

let test_dynamic_untouched_by_mt () =
  (* the MT transform keeps dynamic power essentially unchanged: same
     logic, same activity, slightly different pin caps only *)
  let gen () = Generators.multiplier ~name:"dr" ~bits:5 lib in
  let plain = gen () in
  let gated = gen () in
  ignore (Smt_core.Flow.run Smt_core.Flow.Improved_smt gated);
  let p = Dynamic.estimate ~clock_mhz:200.0 plain in
  let g = Dynamic.estimate ~clock_mhz:200.0 gated in
  Alcotest.(check bool) "within 35%" true
    (Float.abs (g.Dynamic.switching_mw -. p.Dynamic.switching_mw)
     /. p.Dynamic.switching_mw
    < 0.35);
  (* while standby leakage collapsed by an order of magnitude *)
  Alcotest.(check bool) "standby story unchanged" true
    ((Leakage.standby gated).Leakage.total < (Leakage.standby plain).Leakage.total /. 5.0)

(* --- sleep vectors (state-dependent leakage) --- *)

module Sleep_vector = Smt_power.Sleep_vector
module Logic = Smt_sim.Logic

let test_state_factor_bounds () =
  List.iter
    (fun kind ->
      let arity = Func.arity kind in
      for mask = 0 to (1 lsl arity) - 1 do
        let inputs =
          List.init arity (fun i -> Logic.of_bool (mask land (1 lsl i) <> 0))
        in
        let f = Sleep_vector.state_factor kind inputs in
        Alcotest.(check bool) "within [0.4, 1.0]" true (f >= 0.4 && f <= 1.0)
      done)
    [ Func.Nand2; Func.Nor3; Func.Xor2; Func.Mux2; Func.Inv ];
  (* all-ones stack: no series-off transistor, full leak *)
  Alcotest.(check (float 1e-9)) "all-high leaks fully" 1.0
    (Sleep_vector.state_factor Func.Nand2 [ Logic.T; Logic.T ]);
  (* each zero adds stack effect *)
  Alcotest.(check bool) "zeros reduce" true
    (Sleep_vector.state_factor Func.Nand2 [ Logic.F; Logic.F ]
    < Sleep_vector.state_factor Func.Nand2 [ Logic.F; Logic.T ]);
  Alcotest.(check (float 1e-9)) "sequential unaffected" 1.0
    (Sleep_vector.state_factor Func.Dff [ Logic.F ])

let test_vector_changes_leakage () =
  let nl = Smt_circuits.Generators.c17 lib in
  let names = [ "G1"; "G2"; "G3"; "G4"; "G5" ] in
  let all v = List.map (fun n -> (n, v)) names in
  let zeros = Sleep_vector.standby_with_vector nl ~vector:(all Logic.F) in
  let ones = Sleep_vector.standby_with_vector nl ~vector:(all Logic.T) in
  Alcotest.(check bool) "state matters" true (Float.abs (zeros -. ones) > 1e-6);
  let nominal = (Leakage.standby nl).Leakage.total in
  Alcotest.(check bool) "state-aware is below the stateless worst case" true
    (zeros <= nominal +. 1e-9 && ones <= nominal +. 1e-9)

let test_sleep_vector_search () =
  let nl = Smt_circuits.Generators.ripple_adder ~registered:false ~name:"sv" ~bits:6 lib in
  let s = Sleep_vector.search ~tries:48 ~seed:4 nl in
  Alcotest.(check bool) "best <= average" true (s.Sleep_vector.best_nw <= s.Sleep_vector.average_nw);
  Alcotest.(check bool) "average <= worst" true
    (s.Sleep_vector.average_nw <= s.Sleep_vector.worst_nw);
  Alcotest.(check bool) "search finds spread" true
    (s.Sleep_vector.worst_nw > s.Sleep_vector.best_nw);
  (* the reported best vector + state reproduces the reported leakage *)
  Alcotest.(check (float 1e-9)) "best vector reproduces" s.Sleep_vector.best_nw
    (Sleep_vector.standby_with_vector ~ff_state:s.Sleep_vector.best_state nl
       ~vector:s.Sleep_vector.best_vector);
  let s2 = Sleep_vector.search ~tries:48 ~seed:4 nl in
  Alcotest.(check (float 1e-12)) "deterministic" s.Sleep_vector.best_nw s2.Sleep_vector.best_nw

let test_sleep_vector_ignores_gated_cells () =
  (* MT cells leak their residual regardless of state *)
  let nl = Netlist.create ~name:"g" ~lib in
  let a = Netlist.add_input nl "a" in
  let z = Netlist.add_output nl "z" in
  ignore (Netlist.add_inst nl ~name:"m" (mtv Func.Inv) [ ("A", a); ("Z", z) ]);
  let l0 = Sleep_vector.standby_with_vector nl ~vector:[ ("a", Logic.F) ] in
  let l1 = Sleep_vector.standby_with_vector nl ~vector:[ ("a", Logic.T) ] in
  Alcotest.(check (float 1e-9)) "gated cell state-independent" l0 l1

(* --- attribution --- *)

let share_total shares =
  List.fold_left (fun acc (s : Leakage.class_share) -> acc +. s.Leakage.share_nw) 0.0 shares

let share_cells shares =
  List.fold_left (fun acc (s : Leakage.class_share) -> acc + s.Leakage.share_cells) 0 shares

let test_attribution_sums () =
  let nl = Generators.multiplier ~name:"attr" ~bits:5 lib in
  (* mix in some non-plain styles so the grouping has work to do *)
  Netlist.iter_insts nl (fun iid ->
      let c = Netlist.cell nl iid in
      if c.Cell.kind = Func.And2 then
        Netlist.replace_cell nl iid (mtv Func.And2)
      else if c.Cell.kind = Func.Or2 then Netlist.replace_cell nl iid (hv Func.Or2));
  let total = (Leakage.standby nl).Leakage.total in
  let insts = ref 0 in
  Netlist.iter_insts nl (fun _ -> incr insts);
  List.iter
    (fun (label, shares) ->
      Alcotest.(check (float 1e-6)) (label ^ " shares sum to standby total") total
        (share_total shares);
      Alcotest.(check int) (label ^ " shares cover every instance") !insts
        (share_cells shares);
      let nws = List.map (fun (s : Leakage.class_share) -> s.Leakage.share_nw) shares in
      Alcotest.(check (list (float 1e-9)))
        (label ^ " descending by nW")
        (List.sort (fun a b -> compare b a) nws)
        nws)
    [ ("by_vth", Leakage.by_vth nl); ("by_function", Leakage.by_function nl) ];
  (* the restyled cells appear under their own class label *)
  let labels = List.map (fun (s : Leakage.class_share) -> s.Leakage.share_label) (Leakage.by_vth nl) in
  Alcotest.(check bool) "mt style labelled" true (List.mem "low-vth mt-vgnd" labels)

let test_cluster_attribution () =
  let nl, mte, members = mt_fixture 6 in
  let sw = Netlist.add_inst nl ~name:"sw0" (Library.switch lib ~width:4.0) [ ("MTE", mte) ] in
  List.iter (fun m -> Netlist.set_vgnd_switch nl m (Some sw)) members;
  let reports = Bounce.analyze nl ~wire_length_of:(fun _ -> 40.0) in
  match Leakage.clusters ~cell_limit:10 ~bounce_limit:0.123 nl ~bounce:reports with
  | [ a ] ->
    Alcotest.(check string) "switch name" "sw0" a.Leakage.ca_switch_name;
    Alcotest.(check int) "members" 6 a.Leakage.ca_members;
    Alcotest.(check int) "cell limit passed through" 10 a.Leakage.ca_cell_limit;
    Alcotest.(check (float 1e-9)) "bounce limit passed through" 0.123 a.Leakage.ca_bounce_limit;
    Alcotest.(check (float 1e-9)) "vgnd length from the bounce report" 40.0 a.Leakage.ca_vgnd_um;
    let members_nw =
      List.fold_left (fun acc m -> acc +. (Netlist.cell nl m).Cell.leak_standby) 0.0 members
    in
    Alcotest.(check (float 1e-9)) "member leakage summed" members_nw a.Leakage.ca_members_nw;
    Alcotest.(check (float 1e-9)) "switch leakage is the footer's"
      (Netlist.cell nl sw).Cell.leak_standby a.Leakage.ca_switch_nw
  | attrs -> Alcotest.failf "expected one cluster attribution, got %d" (List.length attrs)

let test_cluster_attribution_default_limits () =
  let nl, mte, members = mt_fixture 4 in
  let sw = Netlist.add_inst nl ~name:"sw0" (Library.switch lib ~width:4.0) [ ("MTE", mte) ] in
  List.iter (fun m -> Netlist.set_vgnd_switch nl m (Some sw)) members;
  let reports = Bounce.analyze nl ~wire_length_of:(fun _ -> 0.0) in
  match Leakage.clusters nl ~bounce:reports with
  | [ a ] ->
    Alcotest.(check int) "defaults to the tech EM cap" tech.Tech.em_cell_limit
      a.Leakage.ca_cell_limit;
    Alcotest.(check (float 1e-9)) "defaults to the tech bounce limit" tech.Tech.bounce_limit
      a.Leakage.ca_bounce_limit
  | attrs -> Alcotest.failf "expected one cluster attribution, got %d" (List.length attrs)

(* --- EM --- *)

let test_em_checks () =
  Alcotest.(check bool) "ok" true
    (Em.cluster_ok tech ~cells:4 ~sustained_ua:10.0);
  (match Em.check tech ~cells:(tech.Tech.em_cell_limit + 1) ~sustained_ua:1.0 with
  | Em.Too_many_cells _ -> ()
  | v -> Alcotest.fail (Em.describe v));
  (match Em.check tech ~cells:2 ~sustained_ua:(tech.Tech.em_current_limit +. 1.0) with
  | Em.Current_exceeded _ -> ()
  | v -> Alcotest.fail (Em.describe v));
  Alcotest.(check string) "describe ok" "ok" (Em.describe Em.Ok)

let test_vgnd_wire_res () =
  Alcotest.(check (float 1e-9)) "zero length" 0.0 (Bounce.vgnd_wire_res tech ~length:0.0);
  Alcotest.(check bool) "monotone" true
    (Bounce.vgnd_wire_res tech ~length:100.0 > Bounce.vgnd_wire_res tech ~length:10.0)

let () =
  Alcotest.run "smt_power"
    [
      ( "leakage",
        [
          Alcotest.test_case "breakdown sums" `Quick test_breakdown_sums;
          Alcotest.test_case "all-low-vth leaks" `Quick test_all_low_vth_is_leaky;
          Alcotest.test_case "hv swap reduces" `Quick test_hv_swap_reduces;
          Alcotest.test_case "mt conversion reduces" `Quick test_mt_conversion_reduces;
          Alcotest.test_case "active vs standby" `Quick test_active_vs_standby;
        ] );
      ( "bounce",
        [
          Alcotest.test_case "simultaneous current" `Quick test_simultaneous_current;
          Alcotest.test_case "sustained <= simultaneous" `Quick test_sustained_below_simultaneous;
          Alcotest.test_case "activity tightens" `Quick test_activity_reduces_current;
          Alcotest.test_case "bounce formula" `Quick test_bounce_formula;
          Alcotest.test_case "width helps" `Quick test_wider_switch_less_bounce;
          Alcotest.test_case "cluster analysis" `Quick test_analyze_clusters;
          Alcotest.test_case "per-instance bounce fn" `Quick test_bounce_of_fn;
          Alcotest.test_case "embedded at limit" `Quick test_embedded_bounce_at_limit;
          Alcotest.test_case "vgnd wire res" `Quick test_vgnd_wire_res;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "linear in frequency" `Quick test_dynamic_scales_with_frequency;
          Alcotest.test_case "activity-aware" `Quick test_dynamic_with_activity;
          Alcotest.test_case "untouched by MT" `Quick test_dynamic_untouched_by_mt;
        ] );
      ( "sleep-vector",
        [
          Alcotest.test_case "state factor bounds" `Quick test_state_factor_bounds;
          Alcotest.test_case "vector changes leakage" `Quick test_vector_changes_leakage;
          Alcotest.test_case "search" `Quick test_sleep_vector_search;
          Alcotest.test_case "gated cells immune" `Quick test_sleep_vector_ignores_gated_cells;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "class shares sum" `Quick test_attribution_sums;
          Alcotest.test_case "cluster attribution" `Quick test_cluster_attribution;
          Alcotest.test_case "cluster default limits" `Quick
            test_cluster_attribution_default_limits;
        ] );
      ("em", [ Alcotest.test_case "checks" `Quick test_em_checks ]);
    ]
