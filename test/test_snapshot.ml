(* Tests for the QoR snapshot format and the bench-compare classification:
   serialization must round-trip QoR floats exactly, and the comparator
   must fail the gate on QoR/counter drift while keeping wall-clock moves
   advisory. *)

module Snapshot = Smt_obs.Snapshot

let wl ?(qor = [ ("area_um2", 1234.5678901234567); ("wns_ps", 42.0) ])
    ?(counters = [ ("sta.analyses", 18); ("place.moves", 10368) ])
    ?(stage_ms = [ ("synthesis", 12.5); ("routing", 30.25) ]) name =
  Snapshot.workload ~name ~qor ~counters ~stage_ms

let snap ?(tag = "test") workloads = Snapshot.make ~tag workloads

let base () = snap [ wl "a/dual"; wl "a/improved" ]

let check_clean label deltas =
  Alcotest.(check int) (label ^ ": no deltas") 0 (List.length deltas);
  Alcotest.(check bool) (label ^ ": passes") false (Snapshot.has_regressions deltas)

let fields deltas = List.map (fun d -> d.Snapshot.d_field) deltas

(* --- serialization --- *)

let test_roundtrip () =
  let s =
    snap ~tag:"rt"
      [
        wl "w1"
          ~qor:[ ("exact_third", 1.0 /. 3.0); ("tiny", 1.2345678901234e-17); ("neg", -0.1) ]
          ~counters:[ ("c.one", 1); ("c.big", 123456789) ]
          ~stage_ms:[ ("s1", 0.0); ("s2", 1e3) ];
        wl "w2 \"quoted\\name\"" ~qor:[] ~counters:[] ~stage_ms:[];
      ]
  in
  match Snapshot.of_json (Snapshot.to_json s) with
  | Error e -> Alcotest.fail e
  | Ok s' ->
    Alcotest.(check int) "version" Snapshot.schema_version s'.Snapshot.s_version;
    Alcotest.(check string) "tag" "rt" s'.Snapshot.s_tag;
    Alcotest.(check bool) "workloads identical after the round-trip" true
      (s = s');
    check_clean "roundtrip compares clean" (Snapshot.compare ~baseline:s ~current:s')

let test_write_read_file () =
  let path = Filename.temp_file "snap" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let s = base () in
      Snapshot.write path s;
      match Snapshot.read path with
      | Error e -> Alcotest.fail e
      | Ok s' ->
        check_clean "file round-trip compares clean" (Snapshot.compare ~baseline:s ~current:s'));
  match Snapshot.read "/nonexistent/snapshot.json" with
  | Ok _ -> Alcotest.fail "reading a missing file succeeded"
  | Error _ -> ()

let test_workload_fields_sorted () =
  let w =
    Snapshot.workload ~name:"w"
      ~qor:[ ("zz", 1.0); ("aa", 2.0) ]
      ~counters:[ ("z", 1); ("a", 2) ]
      ~stage_ms:[ ("later", 1.0); ("earlier", 2.0) ]
  in
  Alcotest.(check (list string)) "qor sorted" [ "aa"; "zz" ] (List.map fst w.Snapshot.w_qor);
  Alcotest.(check (list string)) "counters sorted" [ "a"; "z" ]
    (List.map fst w.Snapshot.w_counters);
  Alcotest.(check (list string)) "stage order preserved" [ "later"; "earlier" ]
    (List.map fst w.Snapshot.w_stage_ms)

(* --- comparison classification --- *)

let test_identical_clean () =
  check_clean "identical snapshots" (Snapshot.compare ~baseline:(base ()) ~current:(base ()))

let test_qor_drift_is_regression () =
  let current =
    snap [ wl "a/dual" ~qor:[ ("area_um2", 1235.0); ("wns_ps", 42.0) ]; wl "a/improved" ]
  in
  let deltas = Snapshot.compare ~baseline:(base ()) ~current in
  Alcotest.(check bool) "gate fails" true (Snapshot.has_regressions deltas);
  match Snapshot.regressions deltas with
  | [ d ] ->
    Alcotest.(check string) "workload" "a/dual" d.Snapshot.d_workload;
    Alcotest.(check string) "field" "qor.area_um2" d.Snapshot.d_field
  | ds -> Alcotest.failf "expected one regression, got %d" (List.length ds)

let test_qor_serialization_guard () =
  (* a relative wiggle far below the 1e-9 guard must not trip the gate *)
  let v = 1234.5678901234567 in
  let current =
    snap [ wl "a/dual" ~qor:[ ("area_um2", v *. (1.0 +. 1e-13)); ("wns_ps", 42.0) ]; wl "a/improved" ]
  in
  check_clean "sub-tolerance wiggle" (Snapshot.compare ~baseline:(base ()) ~current)

let test_nan_qor_equal () =
  let b = snap [ wl "w" ~qor:[ ("wns_ps", Float.nan) ] ] in
  let c = snap [ wl "w" ~qor:[ ("wns_ps", Float.nan) ] ] in
  check_clean "nan compares equal to nan" (Snapshot.compare ~baseline:b ~current:c)

let test_counter_change_is_regression () =
  let current =
    snap
      [ wl "a/dual" ~counters:[ ("sta.analyses", 19); ("place.moves", 10368) ]; wl "a/improved" ]
  in
  let deltas = Snapshot.compare ~baseline:(base ()) ~current in
  (match Snapshot.regressions deltas with
  | [ d ] -> Alcotest.(check string) "field" "counter.sta.analyses" d.Snapshot.d_field
  | ds -> Alcotest.failf "expected one regression, got %d" (List.length ds));
  Alcotest.(check bool) "gate fails" true (Snapshot.has_regressions deltas)

let test_counter_missing_is_regression () =
  let current =
    snap [ wl "a/dual" ~counters:[ ("sta.analyses", 18) ]; wl "a/improved" ]
  in
  let deltas = Snapshot.compare ~baseline:(base ()) ~current in
  Alcotest.(check bool) "gate fails" true (Snapshot.has_regressions deltas);
  Alcotest.(check (list string)) "the missing counter is named" [ "counter.place.moves" ]
    (fields (Snapshot.regressions deltas))

let test_stage_ms_is_advisory () =
  let current =
    snap
      [ wl "a/dual" ~stage_ms:[ ("synthesis", 40.0); ("routing", 90.0) ]; wl "a/improved" ]
  in
  let deltas = Snapshot.compare ~baseline:(base ()) ~current in
  Alcotest.(check bool) "gate passes" false (Snapshot.has_regressions deltas);
  Alcotest.(check int) "both stages flagged" 2 (List.length deltas);
  List.iter
    (fun d ->
      Alcotest.(check bool) "advisory severity" true (d.Snapshot.d_severity = Snapshot.Advisory))
    deltas

let test_stage_ms_noise_floor () =
  (* both sides under the floor: a 4x ratio is still scheduler noise *)
  let b = snap [ wl "w" ~stage_ms:[ ("s", 1.0) ] ] in
  let c = snap [ wl "w" ~stage_ms:[ ("s", 4.0) ] ] in
  check_clean "sub-floor wall-clock" (Snapshot.compare ~baseline:b ~current:c);
  (* small ratio above the floor: fine too *)
  let b = snap [ wl "w" ~stage_ms:[ ("s", 100.0) ] ] in
  let c = snap [ wl "w" ~stage_ms:[ ("s", 130.0) ] ] in
  check_clean "sub-ratio wall-clock" (Snapshot.compare ~baseline:b ~current:c)

let test_missing_workload_is_regression () =
  let deltas = Snapshot.compare ~baseline:(base ()) ~current:(snap [ wl "a/dual" ]) in
  (match Snapshot.regressions deltas with
  | [ d ] ->
    Alcotest.(check string) "workload named" "a/improved" d.Snapshot.d_workload;
    Alcotest.(check string) "field" "workload" d.Snapshot.d_field
  | ds -> Alcotest.failf "expected one regression, got %d" (List.length ds));
  Alcotest.(check bool) "gate fails" true (Snapshot.has_regressions deltas)

let test_added_workload_is_advisory () =
  let current = snap [ wl "a/dual"; wl "a/improved"; wl "b/new" ] in
  let deltas = Snapshot.compare ~baseline:(base ()) ~current in
  Alcotest.(check bool) "gate passes" false (Snapshot.has_regressions deltas);
  match deltas with
  | [ d ] -> Alcotest.(check string) "new workload named" "b/new" d.Snapshot.d_workload
  | ds -> Alcotest.failf "expected one advisory, got %d" (List.length ds)

let test_version_mismatch_is_regression () =
  let baseline = { (base ()) with Snapshot.s_version = Snapshot.schema_version + 1 } in
  let deltas = Snapshot.compare ~baseline ~current:(base ()) in
  Alcotest.(check bool) "gate fails" true (Snapshot.has_regressions deltas);
  match deltas with
  | d :: _ -> Alcotest.(check string) "version checked first" "schema_version" d.Snapshot.d_field
  | [] -> Alcotest.fail "no deltas"

let test_render_summary () =
  let current =
    snap [ wl "a/dual" ~qor:[ ("area_um2", 1.0); ("wns_ps", 42.0) ] ]
  in
  let deltas = Snapshot.compare ~baseline:(base ()) ~current in
  let out = Snapshot.render deltas in
  let contains needle =
    let nh = String.length out and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub out i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions REGRESSION" true (contains "REGRESSION");
  Alcotest.(check bool) "has summary line" true (contains "bench-compare:")

let () =
  Alcotest.run "snapshot"
    [
      ( "serialization",
        [
          Alcotest.test_case "json round-trip" `Quick test_roundtrip;
          Alcotest.test_case "file write/read" `Quick test_write_read_file;
          Alcotest.test_case "field ordering" `Quick test_workload_fields_sorted;
        ] );
      ( "compare",
        [
          Alcotest.test_case "identical is clean" `Quick test_identical_clean;
          Alcotest.test_case "qor drift fails" `Quick test_qor_drift_is_regression;
          Alcotest.test_case "serialization guard" `Quick test_qor_serialization_guard;
          Alcotest.test_case "nan equals nan" `Quick test_nan_qor_equal;
          Alcotest.test_case "counter change fails" `Quick test_counter_change_is_regression;
          Alcotest.test_case "counter missing fails" `Quick test_counter_missing_is_regression;
          Alcotest.test_case "wall-clock advisory" `Quick test_stage_ms_is_advisory;
          Alcotest.test_case "wall-clock noise floor" `Quick test_stage_ms_noise_floor;
          Alcotest.test_case "missing workload fails" `Quick test_missing_workload_is_regression;
          Alcotest.test_case "added workload advisory" `Quick test_added_workload_is_advisory;
          Alcotest.test_case "version mismatch fails" `Quick test_version_mismatch_is_regression;
          Alcotest.test_case "render summary" `Quick test_render_summary;
        ] );
    ]
