(* Tests for the QoR attribution layer: the flow's artifacts must carry the
   analysis behind the report's numbers (same STA, same WNS), and every
   explain report must render both as text and as parseable JSON that
   agrees with the report. *)

module Flow = Smt_core.Flow
module Explain = Smt_core.Explain
module Qor = Smt_core.Qor
module Sta = Smt_sta.Sta
module Suite = Smt_circuits.Suite
module Library = Smt_cell.Library
module J = Smt_obs.Obs_json

let lib = Library.default ()

let run_improved =
  let result = lazy (Flow.run_with_artifacts Flow.Improved_smt (Suite.tiny lib)) in
  fun () -> Lazy.force result

let num_field name doc =
  match Option.bind (J.member name doc) J.to_num with
  | Some f -> f
  | None -> Alcotest.failf "missing numeric field %S" name

let arr_field name doc =
  match J.member name doc with
  | Some (J.Arr items) -> items
  | _ -> Alcotest.failf "missing array field %S" name

(* --- artifacts --- *)

let test_artifacts_match_report () =
  let report, art = run_improved () in
  Alcotest.(check (float 1e-9)) "artifact STA carries the reported wns" report.Flow.wns
    (Sta.wns art.Flow.art_sta);
  Alcotest.(check (float 1e-9)) "artifact config carries the clock" report.Flow.clock_period
    art.Flow.art_cfg.Sta.clock_period;
  Alcotest.(check int) "bounce reports cover every switch" report.Flow.n_switches
    (List.length art.Flow.art_bounce);
  (* a plain run reproduces the same QoR (only wall-clock may differ) *)
  let plain = Flow.run Flow.Improved_smt (Suite.tiny lib) in
  Alcotest.(check (float 1e-9)) "run reproduces the wns" report.Flow.wns plain.Flow.wns;
  Alcotest.(check (float 1e-9)) "run reproduces the area" report.Flow.area plain.Flow.area;
  Alcotest.(check (float 1e-9)) "run reproduces the standby" report.Flow.standby_nw
    plain.Flow.standby_nw

let test_worst_path_slack_is_wns () =
  let report, art = run_improved () in
  match Sta.worst_paths art.Flow.art_sta 3 with
  | first :: _ ->
    Alcotest.(check (float 1e-9)) "explain paths leads with the reported wns"
      report.Flow.wns first.Sta.path_endpoint.Sta.slack
  | [] -> Alcotest.fail "no paths"

(* --- text reports --- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_text_reports_render () =
  let report, art = run_improved () in
  let p = Explain.paths ~k:3 report art in
  Alcotest.(check bool) "paths names the circuit" true (contains p report.Flow.circuit);
  Alcotest.(check bool) "paths has the arc table" true (contains p "Cell ps");
  let l = Explain.leakage report art in
  Alcotest.(check bool) "leakage has the vth slice" true (contains l "by threshold class");
  Alcotest.(check bool) "leakage has the waterfall" true (contains l "waterfall");
  let c = Explain.clusters report art in
  Alcotest.(check bool) "clusters has the occupancy column" true (contains c "Occupancy")

(* --- JSON reports --- *)

let test_paths_json () =
  let report, art = run_improved () in
  let k = 3 in
  let doc = J.parse_exn (Explain.paths_json ~k report art) in
  (* JSON numbers carry display precision (6 significant digits) *)
  Alcotest.(check (float 1e-2)) "wns field" report.Flow.wns (num_field "wns_ps" doc);
  let paths = arr_field "paths" doc in
  Alcotest.(check bool) "at least k paths (capped by endpoints)" true
    (List.length paths >= min k (List.length (Sta.endpoints art.Flow.art_sta)));
  match paths with
  | first :: _ ->
    Alcotest.(check (float 1e-2)) "first slack is the wns" report.Flow.wns
      (num_field "slack_ps" first);
    let arcs = arr_field "arcs" first in
    Alcotest.(check bool) "arcs present" true (arcs <> []);
    (* the per-arc delays must rebuild the endpoint arrival (up to the
       per-arc display rounding) *)
    let total =
      List.fold_left
        (fun acc arc -> acc +. num_field "cell_ps" arc +. num_field "wire_ps" arc)
        (num_field "capture_wire_ps" first) arcs
    in
    Alcotest.(check (float 0.5)) "arc delays sum to the arrival"
      (num_field "arrival_ps" first) total
  | [] -> Alcotest.fail "no paths in JSON"

let test_leakage_json () =
  let report, art = run_improved () in
  let doc = J.parse_exn (Explain.leakage_json report art) in
  let total = num_field "standby_nw" doc in
  Alcotest.(check (float 1e-2)) "total is the report's" report.Flow.standby_nw total;
  List.iter
    (fun slice ->
      let sum =
        List.fold_left (fun acc s -> acc +. num_field "nw" s) 0.0 (arr_field slice doc)
      in
      (* JSON uses display precision, so compare loosely *)
      Alcotest.(check bool)
        (slice ^ " shares sum to the total")
        true
        (Float.abs (sum -. total) <= 1e-4 *. Float.max 1.0 total))
    [ "by_vth"; "by_function" ];
  match List.rev (arr_field "waterfall" doc) with
  | last :: _ ->
    Alcotest.(check bool) "waterfall ends at the final standby" true
      (Float.abs (num_field "standby_nw" last -. total) <= 1e-4 *. Float.max 1.0 total)
  | [] -> Alcotest.fail "waterfall empty"

let test_clusters_json () =
  let report, art = run_improved () in
  let doc = J.parse_exn (Explain.clusters_json report art) in
  let attrs = arr_field "attribution" doc in
  Alcotest.(check int) "one attribution per switch" report.Flow.n_switches
    (List.length attrs);
  List.iter
    (fun a ->
      Alcotest.(check bool) "occupancy within the limit context" true
        (num_field "members" a >= 0.0 && num_field "cell_limit" a > 0.0);
      Alcotest.(check bool) "vgnd length non-negative" true (num_field "vgnd_um" a >= 0.0))
    attrs

(* --- qor collection --- *)

let test_qor_workload_collection () =
  (* one small workload, the same machinery collect uses *)
  let before = Smt_obs.Metrics.counters () in
  let r = Flow.run Flow.Improved_smt (Suite.tiny lib) in
  let after = Smt_obs.Metrics.counters () in
  let deltas = Qor.counter_delta ~before ~after in
  Alcotest.(check bool) "flow work shows up in the deltas" true
    (match List.assoc_opt "sta.arrival_evals" deltas with Some n -> n > 0 | None -> false);
  List.iter
    (fun (name, d) ->
      Alcotest.(check bool) (name ^ " delta non-zero") true (d <> 0))
    deltas;
  let qor = Qor.qor_of r in
  List.iter
    (fun field ->
      Alcotest.(check bool) (field ^ " present") true (List.mem_assoc field qor))
    [ "area_um2"; "standby_nw"; "wns_ps"; "clusters"; "switches"; "total_switch_width" ]

let test_qor_slugs () =
  Alcotest.(check string) "dual" "dual" (Qor.technique_slug Flow.Dual_vth);
  Alcotest.(check string) "conventional" "conventional"
    (Qor.technique_slug Flow.Conventional_smt);
  Alcotest.(check string) "improved" "improved" (Qor.technique_slug Flow.Improved_smt);
  Alcotest.(check int) "six default workloads" 6 (List.length Qor.default_workloads)

let () =
  Alcotest.run "explain"
    [
      ( "artifacts",
        [
          Alcotest.test_case "match the report" `Quick test_artifacts_match_report;
          Alcotest.test_case "worst path slack is wns" `Quick test_worst_path_slack_is_wns;
        ] );
      ( "render",
        [
          Alcotest.test_case "text reports" `Quick test_text_reports_render;
          Alcotest.test_case "paths json" `Quick test_paths_json;
          Alcotest.test_case "leakage json" `Quick test_leakage_json;
          Alcotest.test_case "clusters json" `Quick test_clusters_json;
        ] );
      ( "qor",
        [
          Alcotest.test_case "workload collection" `Quick test_qor_workload_collection;
          Alcotest.test_case "slugs & workloads" `Quick test_qor_slugs;
        ] );
    ]
