(* Tests for multi-domain power gating, Liberty export, and placement
   save/restore. *)

module Netlist = Smt_netlist.Netlist
module Check = Smt_check.Drc
module Placement = Smt_place.Placement
module Sta = Smt_sta.Sta
module Leakage = Smt_power.Leakage
module Domains = Smt_core.Domains
module Mt_replace = Smt_core.Mt_replace
module Vth_assign = Smt_core.Vth_assign
module Switch_insert = Smt_core.Switch_insert
module Library = Smt_cell.Library
module Liberty = Smt_cell.Liberty
module Cell = Smt_cell.Cell
module Generators = Smt_circuits.Generators

let lib = Library.default ()

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub hay i nn = needle || loop (i + 1)) in
  loop 0

(* --- domains --- *)

let domain_fixture () =
  let nl = Generators.multiplier ~name:"md" ~bits:8 lib in
  let probe = 1e6 in
  let sta = Sta.analyze (Sta.config ~clock_period:probe ()) nl in
  let period = (probe -. Sta.wns sta) *. 1.05 in
  ignore (Vth_assign.assign (Sta.config ~clock_period:period ()) nl);
  ignore (Mt_replace.replace Mt_replace.Improved nl);
  let place = Placement.place nl in
  ignore (Switch_insert.insert place);
  (nl, place)

let test_partition_covers_all () =
  let nl, place = domain_fixture () in
  let d = Domains.partition ~domains:3 place in
  Alcotest.(check int) "three domains" 3 (Domains.count d);
  let mt = Mt_replace.mt_cells nl in
  let assigned =
    List.concat (List.init 3 (fun i -> Domains.members d i))
  in
  Alcotest.(check int) "all cells assigned" (List.length mt) (List.length assigned);
  Alcotest.(check int) "no duplicates" (List.length assigned)
    (List.length (List.sort_uniq compare assigned));
  (* every MT cell hangs from a switch of its own domain *)
  List.iter
    (fun iid ->
      match (Domains.domain_of d iid, Netlist.vgnd_switch nl iid) with
      | Some dom, Some sw ->
        Alcotest.(check bool) "switch belongs to the domain" true
          (List.mem sw (Domains.switches d dom))
      | _ -> Alcotest.fail "unassigned MT cell")
    mt

let test_partition_own_enables () =
  let nl, place = domain_fixture () in
  let d = Domains.partition ~domains:2 place in
  let m0 = Domains.mte_net d 0 and m1 = Domains.mte_net d 1 in
  Alcotest.(check bool) "distinct enables" true (m0 <> m1);
  Alcotest.(check bool) "both primary inputs" true
    (Netlist.is_pi nl m0 && Netlist.is_pi nl m1);
  (* switches sit on their own domain's enable *)
  List.iter
    (fun dom ->
      List.iter
        (fun sw ->
          Alcotest.(check (option int)) "switch on domain enable"
            (Some (Domains.mte_net d dom))
            (Netlist.pin_net nl sw "MTE"))
        (Domains.switches d dom))
    [ 0; 1 ]

let test_partition_geometric () =
  (* domains should be geometrically coherent: the bounding boxes of the
     two domains overlap less than either spans the die *)
  let _, place = domain_fixture () in
  let d = Domains.partition ~domains:2 place in
  let centroid i = Placement.centroid place (Domains.members d i) in
  let c0 = centroid 0 and c1 = centroid 1 in
  Alcotest.(check bool) "centroids separated" true (Smt_util.Geom.manhattan c0 c1 > 5.0)

let test_partial_sleep_leakage_ordering () =
  let _, place = domain_fixture () in
  let d = Domains.partition ~domains:2 place in
  let awake = Domains.standby_leakage d ~asleep:[] in
  let half0 = Domains.standby_leakage d ~asleep:[ 0 ] in
  let half1 = Domains.standby_leakage d ~asleep:[ 1 ] in
  let full = Domains.standby_leakage d ~asleep:[ 0; 1 ] in
  Alcotest.(check bool) "sleeping saves (domain 0)" true (half0 < awake);
  Alcotest.(check bool) "sleeping saves (domain 1)" true (half1 < awake);
  Alcotest.(check bool) "full sleep saves most" true (full < Float.min half0 half1);
  (* full sleep equals the ordinary standby accounting *)
  let nl = Placement.netlist place in
  Alcotest.(check bool) "full sleep ~ global standby" true
    (Float.abs (full -. (Leakage.standby nl).Leakage.total) /. full < 0.2)

let test_partition_validates () =
  let nl, place = domain_fixture () in
  ignore (Domains.partition ~domains:2 place);
  Alcotest.(check (list string)) "netlist valid post-MT" []
    (Check.validate ~phase:Check.Post_mt nl)

let test_partition_bad_args () =
  let _, place = domain_fixture () in
  Alcotest.(check bool) "zero domains rejected" true
    (try
       ignore (Domains.partition ~domains:0 place);
       false
     with Invalid_argument _ -> true);
  let plain = Generators.c17 lib in
  let plain_place = Placement.place plain in
  Alcotest.(check bool) "no MT cells rejected" true
    (try
       ignore (Domains.partition plain_place);
       false
     with Invalid_argument _ -> true)

(* --- composition --- *)

let test_compose_structure () =
  let a = Generators.c17 lib in
  let b = Generators.counter ~name:"cnt" ~bits:4 lib in
  let top = Smt_netlist.Compose.merge ~name:"top" [ ("u0", a); ("u1", b) ] in
  Alcotest.(check (list string)) "valid" [] (Check.validate top);
  let sa = Smt_netlist.Nl_stats.compute a in
  let sb = Smt_netlist.Nl_stats.compute b in
  let st = Smt_netlist.Nl_stats.compute top in
  Alcotest.(check int) "instances add up"
    (sa.Smt_netlist.Nl_stats.instances + sb.Smt_netlist.Nl_stats.instances)
    st.Smt_netlist.Nl_stats.instances;
  (* one shared clock *)
  let clock_inputs =
    Netlist.inputs top |> List.filter (fun (_, nid) -> Netlist.is_clock_net top nid)
  in
  Alcotest.(check int) "single clock input" 1 (List.length clock_inputs)

let test_compose_preserves_function () =
  let a = Generators.c17 lib in
  let top = Smt_netlist.Compose.merge ~name:"top" [ ("u0", Generators.c17 lib) ] in
  (* drive the composed block and the standalone block identically *)
  let sim_top = Smt_sim.Simulator.create top in
  let sim_a = Smt_sim.Simulator.create a in
  for mask = 0 to 31 do
    let bit i = Smt_sim.Logic.of_bool (mask land (1 lsl i) <> 0) in
    let names = [ "G1"; "G2"; "G3"; "G4"; "G5" ] in
    Smt_sim.Simulator.set_inputs sim_a (List.mapi (fun i n -> (n, bit i)) names);
    Smt_sim.Simulator.set_inputs sim_top
      (List.mapi (fun i n -> ("u0_" ^ n, bit i)) names);
    Smt_sim.Simulator.propagate sim_a;
    Smt_sim.Simulator.propagate sim_top;
    List.iter
      (fun out ->
        let va = List.assoc out (Smt_sim.Simulator.output_values sim_a) in
        let vt = List.assoc ("u0_" ^ out) (Smt_sim.Simulator.output_values sim_top) in
        Alcotest.(check bool) (out ^ " matches") true (Smt_sim.Logic.equal va vt))
      [ "G22"; "G23" ]
  done

let test_compose_preserves_vgnd () =
  let nl = Generators.multiplier ~name:"m" ~bits:5 lib in
  let probe = 1e6 in
  let sta = Sta.analyze (Sta.config ~clock_period:probe ()) nl in
  let period = (probe -. Sta.wns sta) *. 1.05 in
  ignore (Vth_assign.assign (Sta.config ~clock_period:period ()) nl);
  ignore (Mt_replace.replace Mt_replace.Improved nl);
  let place = Placement.place nl in
  ignore (Switch_insert.insert place);
  let top = Smt_netlist.Compose.merge ~name:"top" [ ("b", nl) ] in
  Alcotest.(check (list string)) "post-MT valid after merge" []
    (Check.validate ~phase:Check.Post_mt top);
  Alcotest.(check int) "switches survive" (List.length (Netlist.switches nl))
    (List.length (Netlist.switches top))

let test_compose_bad_args () =
  let a = Generators.c17 lib in
  Alcotest.(check bool) "empty list" true
    (try
       ignore (Smt_netlist.Compose.merge ~name:"t" []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "duplicate prefix" true
    (try
       ignore
         (Smt_netlist.Compose.merge ~name:"t" [ ("u", a); ("u", Generators.c17 lib) ]);
       false
     with Invalid_argument _ -> true)

let test_soc_runs_the_flow () =
  let nl = Smt_circuits.Suite.all |> List.assoc "soc" |> fun g -> g lib in
  let r = Smt_core.Flow.run Smt_core.Flow.Improved_smt nl in
  Alcotest.(check bool) "flow completes on the composed SoC" true (r.Smt_core.Flow.area > 0.0);
  Alcotest.(check bool) "timing met" true r.Smt_core.Flow.timing_met

(* --- liberty --- *)

let test_liberty_structure () =
  let text = Liberty.to_string lib in
  Alcotest.(check bool) "library header" true (contains text "library(selective_mt)");
  Alcotest.(check bool) "nand2 lvt present" true (contains text "cell(NAND2_LVT)");
  Alcotest.(check bool) "mt variant present" true (contains text "cell(NAND2_MTV)");
  Alcotest.(check bool) "retention ff present" true (contains text "cell(DFF_RET)");
  Alcotest.(check bool) "ff block present" true (contains text "ff(IQ, IQN)");
  Alcotest.(check bool) "timing arcs present" true (contains text "intrinsic_rise");
  Alcotest.(check bool) "leakage attribute" true (contains text "cell_leakage_power")

let test_liberty_balanced_braces () =
  let text = Liberty.to_string lib in
  let opens = ref 0 and closes = ref 0 in
  String.iter
    (fun c -> if c = '{' then incr opens else if c = '}' then incr closes)
    text;
  Alcotest.(check int) "braces balanced" !opens !closes;
  Alcotest.(check bool) "covers the library" true
    (Liberty.cell_count lib > 60)

let test_liberty_numbers_match () =
  let text = Liberty.to_string lib in
  let nand2 = Library.variant lib Smt_cell.Func.Nand2 Smt_cell.Vth.Low Smt_cell.Vth.Plain in
  Alcotest.(check bool) "area appears" true
    (contains text (Printf.sprintf "area : %.4f;" nand2.Cell.area))

let test_liberty_parse_roundtrip () =
  let text = Liberty.to_string lib in
  let cells = Liberty.parse text in
  Alcotest.(check int) "every cell parsed" (Liberty.cell_count lib) (List.length cells);
  (* spot-check a cell's numbers against the library *)
  let nand2 = Library.variant lib Smt_cell.Func.Nand2 Smt_cell.Vth.Low Smt_cell.Vth.Plain in
  let parsed = List.find (fun c -> c.Liberty.p_name = "NAND2_LVT") cells in
  Alcotest.(check (float 1e-3)) "area round-trips" nand2.Cell.area parsed.Liberty.p_area;
  Alcotest.(check (float 1e-5)) "leakage round-trips" nand2.Cell.leak_standby
    parsed.Liberty.p_leakage;
  Alcotest.(check int) "two inputs" 2 (List.length parsed.Liberty.p_input_pins);
  Alcotest.(check (list string)) "one output" [ "Z" ] parsed.Liberty.p_output_pins;
  List.iter
    (fun (_, cap) -> Alcotest.(check (float 1e-4)) "pin cap" nand2.Cell.input_cap cap)
    parsed.Liberty.p_input_pins

let test_liberty_parse_rejects_garbage () =
  Alcotest.(check bool) "garbage raises" true
    (try
       ignore (Liberty.parse "cell ( { ;");
       false
     with Failure _ -> true)

(* --- placement io --- *)

let test_placement_roundtrip () =
  let nl = Generators.multiplier ~name:"mp" ~bits:6 lib in
  let place = Placement.place nl in
  let text = Placement.to_string place in
  let back = Placement.of_string nl text in
  List.iter
    (fun iid ->
      let p1 = Placement.inst_point place iid and p2 = Placement.inst_point back iid in
      Alcotest.(check bool)
        (Netlist.inst_name nl iid ^ " position survives")
        true
        (Float.abs (p1.Smt_util.Geom.x -. p2.Smt_util.Geom.x) < 1e-3
        && Float.abs (p1.Smt_util.Geom.y -. p2.Smt_util.Geom.y) < 1e-3))
    (Netlist.live_insts nl);
  Alcotest.(check bool) "hpwl agrees" true
    (Float.abs (Placement.total_hpwl place -. Placement.total_hpwl back)
     /. Placement.total_hpwl place
    < 0.01)

let test_placement_io_errors () =
  let nl = Generators.c17 lib in
  Alcotest.(check bool) "missing DIE" true
    (try
       ignore (Placement.of_string nl "INST nobody 1 2\n");
       false
     with Failure _ -> true);
  Alcotest.(check bool) "unknown instance" true
    (try
       ignore
         (Placement.of_string nl "DIE 0 0 10 10 ROWS 2\nINST nobody 1 2\n");
       false
     with Failure _ -> true)

let () =
  Alcotest.run "smt_domains_io"
    [
      ( "domains",
        [
          Alcotest.test_case "covers all cells" `Quick test_partition_covers_all;
          Alcotest.test_case "own enables" `Quick test_partition_own_enables;
          Alcotest.test_case "geometric coherence" `Quick test_partition_geometric;
          Alcotest.test_case "partial sleep ordering" `Quick test_partial_sleep_leakage_ordering;
          Alcotest.test_case "validates" `Quick test_partition_validates;
          Alcotest.test_case "bad arguments" `Quick test_partition_bad_args;
        ] );
      ( "compose",
        [
          Alcotest.test_case "structure" `Quick test_compose_structure;
          Alcotest.test_case "function preserved" `Quick test_compose_preserves_function;
          Alcotest.test_case "vgnd preserved" `Quick test_compose_preserves_vgnd;
          Alcotest.test_case "bad arguments" `Quick test_compose_bad_args;
          Alcotest.test_case "soc through the flow" `Quick test_soc_runs_the_flow;
        ] );
      ( "liberty",
        [
          Alcotest.test_case "structure" `Quick test_liberty_structure;
          Alcotest.test_case "balanced braces" `Quick test_liberty_balanced_braces;
          Alcotest.test_case "numbers match" `Quick test_liberty_numbers_match;
          Alcotest.test_case "parse roundtrip" `Quick test_liberty_parse_roundtrip;
          Alcotest.test_case "parse rejects garbage" `Quick test_liberty_parse_rejects_garbage;
        ] );
      ( "placement-io",
        [
          Alcotest.test_case "roundtrip" `Quick test_placement_roundtrip;
          Alcotest.test_case "errors" `Quick test_placement_io_errors;
        ] );
    ]
