(* Checker, repair pass, fault-injection coverage, and flow guard modes. *)

module Netlist = Smt_netlist.Netlist
module Clone = Smt_netlist.Clone
module Placement = Smt_place.Placement
module Sta = Smt_sta.Sta
module Library = Smt_cell.Library
module Func = Smt_cell.Func
module Vth = Smt_cell.Vth
module Cell = Smt_cell.Cell
module Generators = Smt_circuits.Generators
module Drc = Smt_check.Drc
module Repair = Smt_check.Repair
module Violation = Smt_check.Violation
module Fault = Smt_fault.Fault
module Flow = Smt_core.Flow
module Verify = Smt_verify.Verify
module Rules = Smt_verify.Rules

let lib = Library.default ()
let lv k = Library.variant lib k Vth.Low Vth.Plain

(* A healthy post-MT netlist: Vth assignment, improved MT replacement,
   switch & holder insertion — the state the Post_mt rules govern. *)
let mt_netlist ?(bits = 5) ~seed () =
  let nl = Generators.multiplier ~name:(Printf.sprintf "chk%d" seed) ~bits lib in
  let probe = 1e6 in
  let sta = Sta.analyze (Sta.config ~clock_period:probe ()) nl in
  let period = (probe -. Sta.wns sta) *. 1.05 in
  ignore (Smt_core.Vth_assign.assign (Sta.config ~clock_period:period ()) nl);
  ignore (Smt_core.Mt_replace.replace Smt_core.Mt_replace.Improved nl);
  let place = Placement.place ~seed nl in
  ignore (Smt_core.Switch_insert.insert place);
  (nl, place)

let error_strings vs = List.map Violation.to_string (Violation.errors vs)

let check_clean ?place nl =
  Alcotest.(check (list string))
    "no error violations" []
    (error_strings (Drc.check ?place ~expect_buffered_mte:false nl))

(* --- checker on hand-built pathologies --- *)

let test_clean_netlist_passes () =
  let nl, place = mt_netlist ~seed:3 () in
  check_clean ~place nl

let test_undriven_net_detected () =
  let nl = Netlist.create ~name:"t" ~lib in
  let a = Netlist.add_input nl "a" in
  let z = Netlist.add_output nl "z" in
  let w = Netlist.add_net nl "w" in
  ignore (Netlist.add_inst nl ~name:"g1" (lv Func.Nand2) [ ("A", a); ("B", w); ("Z", z) ]);
  let vs = Drc.check nl in
  Alcotest.(check bool) "undriven-net reported" true
    (List.exists (fun v -> v.Violation.code = Violation.Undriven_net) vs);
  Alcotest.(check bool) "it is an error" true (Drc.has_errors vs)

let test_comb_loop_detected () =
  let nl = Netlist.create ~name:"t" ~lib in
  let a = Netlist.add_net nl "a" in
  let b = Netlist.add_net nl "b" in
  ignore (Netlist.add_inst nl ~name:"i1" (lv Func.Inv) [ ("A", a); ("Z", b) ]);
  ignore (Netlist.add_inst nl ~name:"i2" (lv Func.Inv) [ ("A", b); ("Z", a) ]);
  let vs = Drc.check nl in
  Alcotest.(check bool) "comb-loop reported" true
    (List.exists (fun v -> v.Violation.code = Violation.Comb_loop) vs)

let test_floating_input_detected () =
  let nl = Netlist.create ~name:"t" ~lib in
  let a = Netlist.add_input nl "a" in
  let z = Netlist.add_output nl "z" in
  let g = Netlist.add_inst nl ~name:"g1" (lv Func.Nand2) [ ("A", a); ("B", a); ("Z", z) ] in
  Netlist.disconnect nl g "B";
  let vs = Drc.check nl in
  Alcotest.(check bool) "floating-input reported" true
    (List.exists
       (fun v -> v.Violation.code = Violation.Floating_input && v.Violation.severity = Violation.Error)
       vs)

let test_no_timing_endpoints_warned () =
  let nl = Netlist.create ~name:"t" ~lib in
  let a = Netlist.add_input nl "a" in
  let w = Netlist.add_net nl "w" in
  ignore (Netlist.add_inst nl ~name:"i1" (lv Func.Inv) [ ("A", a); ("Z", w) ]);
  let vs = Drc.check nl in
  Alcotest.(check bool) "no-timing-endpoints warned" true
    (List.exists (fun v -> v.Violation.code = Violation.No_timing_endpoints) vs);
  Alcotest.(check bool) "only a warning" false (Drc.has_errors vs)

let test_minimal_period_fallback () =
  (* No primary outputs, no flip-flops: STA has no endpoints and
     minimal_period reports its documented fallback. *)
  let nl = Netlist.create ~name:"t" ~lib in
  let a = Netlist.add_input nl "a" in
  let w = Netlist.add_net nl "w" in
  ignore (Netlist.add_inst nl ~name:"i1" (lv Func.Inv) [ ("A", a); ("Z", w) ]);
  let place = Placement.place ~seed:1 nl in
  let wire = Smt_route.Parasitics.wire_model (Smt_route.Parasitics.estimate place) nl in
  Alcotest.(check (float 1e-9))
    "fallback period" Flow.endpoint_free_fallback_ps
    (Flow.minimal_period ~wire nl)

let test_check_library_flags_poison () =
  Alcotest.(check (list string)) "default library sane" [] (error_strings (Drc.check_library lib))

(* --- fault-injection coverage: every class maps to its expected codes
   (structural DRC) or expected rules (semantic standby pass) --- *)

let codes_of ?place nl =
  List.map (fun v -> v.Violation.code) (Drc.check ?place ~expect_buffered_mte:false nl)

(* Domain-only classes need declared domains and isolation clamps, which
   the flow-built multiplier doesn't have; they get the multi-domain SoC. *)
let fixture_for fault ~seed =
  if Fault.requires_domains fault then
    (Smt_circuits.Suite.multi_domain ~name:(Printf.sprintf "chkd%d" seed) lib, None)
  else
    let nl, place = mt_netlist ~seed () in
    (nl, Some place)

let rule_ids_of nl =
  List.map (fun f -> f.Rules.rule.Rules.id) (Verify.analyze nl).Verify.findings

let test_fault_coverage () =
  List.iter
    (fun fault ->
      (* No fault class may fall between the two checkers. *)
      Alcotest.(check bool)
        (Fault.name fault ^ " has a detection mapping")
        true
        (Fault.expected_codes fault <> [] || Fault.expected_rules fault <> []);
      List.iter
        (fun seed ->
          let nl, place = fixture_for fault ~seed in
          match Fault.inject ~seed nl fault with
          | None ->
            Alcotest.fail
              (Printf.sprintf "fault %s: no applicable site (seed %d)" (Fault.name fault)
                 seed)
          | Some _ ->
            (match Fault.expected_codes fault with
            | [] ->
              (* Semantic-only class: the structural checker must stay
                 blind, or the class belongs in expected_codes. *)
              Alcotest.(check (list string))
                (Printf.sprintf "%s: DRC blind (seed %d)" (Fault.name fault) seed)
                []
                (error_strings (Drc.check ?place ~expect_buffered_mte:false nl))
            | expected ->
              let codes = codes_of ?place nl in
              Alcotest.(check bool)
                (Printf.sprintf "%s DRC-detected (seed %d)" (Fault.name fault) seed)
                true
                (List.exists (fun c -> List.mem c codes) expected));
            match Fault.expected_rules fault with
            | [] -> ()
            | expected ->
              let rules = rule_ids_of nl in
              Alcotest.(check bool)
                (Printf.sprintf "%s lint-detected (seed %d)" (Fault.name fault) seed)
                true
                (List.exists (fun r -> List.mem r rules) expected))
        [ 1; 2; 3 ])
    Fault.all

let test_undetected_without_fault () =
  (* The detection mapping is meaningful only if the codes and rules are
     absent before injection. *)
  List.iter
    (fun fault ->
      let nl, place = fixture_for fault ~seed:7 in
      let codes = codes_of ?place nl in
      let rules = rule_ids_of nl in
      Alcotest.(check bool)
        (Printf.sprintf "%s codes absent pre-injection" (Fault.name fault))
        false
        (List.exists (fun c -> List.mem c codes) (Fault.expected_codes fault));
      Alcotest.(check bool)
        (Printf.sprintf "%s rules absent pre-injection" (Fault.name fault))
        false
        (List.exists (fun r -> List.mem r rules) (Fault.expected_rules fault)))
    Fault.all

let test_repair_restores_clean () =
  List.iter
    (fun fault ->
      if Fault.repairable fault then
        List.iter
          (fun seed ->
            let nl, place = mt_netlist ~seed () in
            match Fault.inject ~seed nl fault with
            | None -> Alcotest.fail (Fault.name fault ^ ": no applicable site")
            | Some _ ->
              let vs = Drc.check ~place ~expect_buffered_mte:false nl in
              let r = Repair.repair ~place nl vs in
              Alcotest.(check bool)
                (Printf.sprintf "%s: repair acted (seed %d)" (Fault.name fault) seed)
                true (r.Repair.repaired > 0);
              Alcotest.(check (list string))
                (Printf.sprintf "%s: clean after repair (seed %d)" (Fault.name fault) seed)
                []
                (error_strings (Drc.check ~place ~expect_buffered_mte:false nl)))
          [ 1; 2 ])
    Fault.all

let test_repair_idempotent () =
  List.iter
    (fun fault ->
      if Fault.repairable fault then begin
        let nl, place = mt_netlist ~seed:5 () in
        (match Fault.inject ~seed:5 nl fault with
        | None -> Alcotest.fail (Fault.name fault ^ ": no applicable site")
        | Some _ -> ());
        let vs = Drc.check ~place ~expect_buffered_mte:false nl in
        ignore (Repair.repair ~place nl vs);
        let vs2 = Drc.check ~place ~expect_buffered_mte:false nl in
        let r2 = Repair.repair ~place nl vs2 in
        Alcotest.(check int)
          (Fault.name fault ^ ": second repair is a no-op")
          0 r2.Repair.repaired
      end)
    Fault.all

(* --- flow guard modes --- *)

let fast_options = { Flow.default_options with Flow.activity_cycles = 32 }
let gen () = Generators.multiplier ~name:"gchk" ~bits:5 lib

let strip_timing (r : Flow.report) =
  (* stage wall-clock times differ run to run; everything else must not *)
  { r with Flow.stages = List.map (fun s -> { s with Flow.stage_ms = 0.0 }) r.Flow.stages }

let test_guard_warn_identical_results () =
  let off = Flow.run ~options:fast_options Flow.Improved_smt (gen ()) in
  let warn =
    Flow.run
      ~options:{ fast_options with Flow.guard = Flow.Guard_warn }
      Flow.Improved_smt (gen ())
  in
  Alcotest.(check bool) "warn leaves results unchanged" true
    (strip_timing off
    = strip_timing { warn with Flow.diagnostics = []; Flow.check_violations = 0 });
  Alcotest.(check bool) "no degradation" false warn.Flow.degraded;
  Alcotest.(check int) "no repairs in warn mode" 0 warn.Flow.check_repairs

let test_guard_strict_clean_circuit () =
  let r =
    Flow.run
      ~options:{ fast_options with Flow.guard = Flow.Guard_strict }
      Flow.Improved_smt (gen ())
  in
  Alcotest.(check bool) "strict flow completes on a healthy circuit" true
    (r.Flow.n_switches > 0)

let poisoned () =
  let nl = gen () in
  (* NaN leakage on one logic cell: caught at the very first snapshot *)
  (match
     List.find_opt
       (fun iid ->
         let k = (Netlist.cell nl iid).Cell.kind in
         (not (Func.is_infrastructure k)) && not (Func.is_sequential k))
       (Netlist.live_insts nl)
   with
  | Some iid ->
    let c = Netlist.cell nl iid in
    Netlist.replace_cell nl iid { c with Cell.leak_standby = Float.nan }
  | None -> Alcotest.fail "no logic instance to poison");
  nl

let test_guard_strict_rejects_poison () =
  Alcotest.(check bool) "strict raises Flow_error" true
    (try
       ignore
         (Flow.run
            ~options:{ fast_options with Flow.guard = Flow.Guard_strict }
            Flow.Dual_vth (poisoned ()));
       false
     with Flow.Flow_error e -> e.Flow.fe_diagnostics <> [])

let test_guard_repair_fixes_poison () =
  let r =
    Flow.run
      ~options:{ fast_options with Flow.guard = Flow.Guard_repair }
      Flow.Dual_vth (poisoned ())
  in
  Alcotest.(check bool) "repair acted" true (r.Flow.check_repairs > 0);
  Alcotest.(check bool) "leakage finite again" true (Float.is_finite r.Flow.standby_nw);
  Alcotest.(check bool) "not degraded" false r.Flow.degraded

let test_run_all_isolates_failures () =
  (* Healthy generator: three Completed outcomes in technique order. *)
  let outcomes = Flow.run_all ~options:fast_options gen in
  Alcotest.(check int) "three outcomes" 3 (List.length outcomes);
  Alcotest.(check int) "three completed" 3 (List.length (Flow.completed outcomes));
  (* Poisoned generator under strict: every technique fails, none aborts
     the sweep, and each failure names its stage. *)
  let outcomes =
    Flow.run_all
      ~options:{ fast_options with Flow.guard = Flow.Guard_strict }
      (fun () -> poisoned ())
  in
  Alcotest.(check int) "three outcomes" 3 (List.length outcomes);
  Alcotest.(check int) "none completed" 0 (List.length (Flow.completed outcomes));
  List.iter
    (function
      | Flow.Completed _ -> Alcotest.fail "expected failure"
      | Flow.Failed { technique = _; stage; diagnostics } ->
        Alcotest.(check bool) "stage recorded" true (stage <> "");
        Alcotest.(check bool) "diagnostics recorded" true (diagnostics <> []))
    outcomes

let () =
  Alcotest.run "smt_check"
    [
      ( "drc",
        [
          Alcotest.test_case "clean post-MT netlist passes" `Quick test_clean_netlist_passes;
          Alcotest.test_case "undriven net" `Quick test_undriven_net_detected;
          Alcotest.test_case "combinational loop" `Quick test_comb_loop_detected;
          Alcotest.test_case "floating input" `Quick test_floating_input_detected;
          Alcotest.test_case "no timing endpoints" `Quick test_no_timing_endpoints_warned;
          Alcotest.test_case "minimal_period fallback" `Quick test_minimal_period_fallback;
          Alcotest.test_case "library data sane" `Quick test_check_library_flags_poison;
        ] );
      ( "faults",
        [
          Alcotest.test_case "every class detected" `Quick test_fault_coverage;
          Alcotest.test_case "codes absent pre-injection" `Quick test_undetected_without_fault;
          Alcotest.test_case "repair restores clean" `Quick test_repair_restores_clean;
          Alcotest.test_case "repair idempotent" `Quick test_repair_idempotent;
        ] );
      ( "guard",
        [
          Alcotest.test_case "warn leaves results unchanged" `Quick
            test_guard_warn_identical_results;
          Alcotest.test_case "strict passes healthy circuit" `Quick
            test_guard_strict_clean_circuit;
          Alcotest.test_case "strict rejects poisoned library" `Quick
            test_guard_strict_rejects_poison;
          Alcotest.test_case "repair fixes poisoned library" `Quick
            test_guard_repair_fixes_poison;
          Alcotest.test_case "run_all isolates failures" `Quick
            test_run_all_isolates_failures;
        ] );
    ]
