(* System-level tests: global router, sign-off reports, and the standby
   entry/exit protocol. *)

module Netlist = Smt_netlist.Netlist
module Placement = Smt_place.Placement
module Parasitics = Smt_route.Parasitics
module Global_router = Smt_route.Global_router
module Sta = Smt_sta.Sta
module Flow = Smt_core.Flow
module Report = Smt_core.Report
module Standby = Smt_core.Standby
module Switch_insert = Smt_core.Switch_insert
module Mt_replace = Smt_core.Mt_replace
module Vth_assign = Smt_core.Vth_assign
module Library = Smt_cell.Library
module Generators = Smt_circuits.Generators

let lib = Library.default ()

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub hay i nn = needle || loop (i + 1)) in
  loop 0

let placed () =
  let nl = Generators.multiplier ~name:"m6" ~bits:6 lib in
  let place = Placement.place nl in
  (nl, place)

(* --- global router --- *)

let test_router_routes_everything () =
  let nl, place = placed () in
  let r = Global_router.route place in
  Alcotest.(check bool) "nets routed" true (Global_router.routed_nets r > 0);
  let missing = ref 0 in
  Netlist.iter_nets nl (fun nid ->
      let pts = Placement.pin_points place nid in
      if List.length pts >= 2 then begin
        let box = Smt_util.Geom.bbox_of_points pts in
        if Smt_util.Geom.hpwl box > 0.0 && Global_router.net_length r nid <= 0.0 then
          incr missing
      end);
  Alcotest.(check int) "no spread net unrouted" 0 !missing

let test_router_length_lower_bound () =
  (* routed length >= HPWL/2 for every net (gcell quantization aside) *)
  let nl, place = placed () in
  let r = Global_router.route ~gcell:5.0 place in
  Netlist.iter_nets nl (fun nid ->
      let hpwl = Placement.net_hpwl place nid in
      if hpwl > 10.0 then
        Alcotest.(check bool) "not shorter than half HPWL" true
          (Global_router.net_length r nid >= (hpwl /. 2.0) -. 10.0))

let test_router_deterministic () =
  let _, place = placed () in
  let r1 = Global_router.route place and r2 = Global_router.route place in
  Alcotest.(check (float 1e-9)) "same total length" (Global_router.total_length r1)
    (Global_router.total_length r2);
  Alcotest.(check int) "same overflow" (Global_router.overflow r1) (Global_router.overflow r2)

let test_router_capacity_relieves_overflow () =
  let _, place = placed () in
  let tight = Global_router.route ~capacity:1 place in
  let roomy = Global_router.route ~capacity:1000 place in
  Alcotest.(check int) "huge capacity, no overflow" 0 (Global_router.overflow roomy);
  Alcotest.(check bool) "tight capacity, at least as much overflow" true
    (Global_router.overflow tight >= Global_router.overflow roomy);
  Alcotest.(check bool) "congestion ratio sane" true (Global_router.max_congestion roomy <= 1.0)

let test_router_detour_factor () =
  let _, place = placed () in
  let r = Global_router.route place in
  let d = Global_router.detour_factor r place in
  Alcotest.(check bool) "detour >= 1" true (d >= 1.0);
  Alcotest.(check bool) "detour sane (< 3)" true (d < 3.0)

let test_router_parasitics () =
  let nl, place = placed () in
  let r = Global_router.route place in
  let p = Global_router.to_parasitics r place in
  Alcotest.(check bool) "extracted corner" true (Parasitics.corner p = Parasitics.Extracted);
  Netlist.iter_nets nl (fun nid ->
      Alcotest.(check (float 1e-6)) "lengths transferred" (Global_router.net_length r nid)
        (Parasitics.net_length p nid))

(* --- reports --- *)

let flow_report = lazy (
  let nl = Generators.multiplier ~name:"m6r" ~bits:6 lib in
  let r = Flow.run Flow.Improved_smt nl in
  (nl, r))

let test_timing_report () =
  let nl, _ = Lazy.force flow_report in
  let sta = Sta.analyze (Sta.config ~clock_period:5000.0 ()) nl in
  let text = Report.timing ~paths:2 sta in
  Alcotest.(check bool) "mentions wns" true (contains text "wns");
  Alcotest.(check bool) "has endpoint section" true (contains text "endpoint");
  Alcotest.(check bool) "has path table" true
    (contains text "Cell ps" && contains text "Wire ps");
  Alcotest.(check bool) "met at 5ns" true (contains text "(MET)")

let test_timing_report_violated () =
  let nl, _ = Lazy.force flow_report in
  let sta = Sta.analyze (Sta.config ~clock_period:10.0 ()) nl in
  Alcotest.(check bool) "flags violation" true
    (contains (Report.timing sta) "(VIOLATED)")

let test_power_report () =
  let nl, _ = Lazy.force flow_report in
  let text = Report.power nl in
  Alcotest.(check bool) "total present" true (contains text "Standby leakage");
  Alcotest.(check bool) "switches listed" true (contains text "sleep switches");
  Alcotest.(check bool) "MT residual listed" true (contains text "MT-cell residual");
  Alcotest.(check bool) "share column" true (contains text "%")

let test_area_report () =
  let nl, _ = Lazy.force flow_report in
  let text = Report.area nl in
  Alcotest.(check bool) "MT category" true (contains text "MT-cells");
  Alcotest.(check bool) "kind table" true (contains text "DFF");
  Alcotest.(check bool) "fraction shown" true (contains text "MT fraction")

let test_summary () =
  let nl, _ = Lazy.force flow_report in
  let sta = Sta.analyze (Sta.config ~clock_period:5000.0 ()) nl in
  Alcotest.(check bool) "summary says MET" true (contains (Report.summary sta) "MET")

(* --- SDF & JSON exports --- *)

let test_sdf_export () =
  let nl, _ = Lazy.force flow_report in
  let sta = Sta.analyze (Sta.config ~clock_period:5000.0 ()) nl in
  let text = Smt_sta.Sdf.to_string ~t:sta ~design:"m6r" in
  Alcotest.(check bool) "has header" true (contains text "DELAYFILE");
  Alcotest.(check bool) "names the design" true (contains text "(DESIGN \"m6r\")");
  Alcotest.(check bool) "has IOPATHs" true (contains text "IOPATH");
  (* one CELL entry per output-bearing instance *)
  let cells = ref 0 in
  String.iter (fun _ -> ()) text;
  let rec count i =
    match String.index_from_opt text i '(' with
    | Some j ->
      if j + 6 <= String.length text && String.sub text j 6 = "(CELL " then incr cells;
      count (j + 1)
    | None -> ()
  in
  count 0;
  Alcotest.(check int) "cell entries" (Smt_sta.Sdf.instance_count sta) !cells;
  (* balanced parens = plausibly well-formed *)
  let opens = ref 0 and closes = ref 0 in
  String.iter (fun c -> if c = '(' then incr opens else if c = ')' then incr closes) text;
  Alcotest.(check int) "balanced" !opens !closes

let test_json_export () =
  let nl, r = Lazy.force flow_report in
  ignore nl;
  let text = Smt_core.Report_json.of_report r in
  Alcotest.(check bool) "object" true (text.[0] = '{');
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " present") true (contains text ("\"" ^ key ^ "\"")))
    [ "technique"; "area_um2"; "standby_nw"; "leakage"; "stages"; "timing_met" ];
  let opens = ref 0 and closes = ref 0 in
  String.iter (fun c -> if c = '{' then incr opens else if c = '}' then incr closes) text;
  Alcotest.(check int) "braces balanced" !opens !closes;
  let rows = [ Smt_core.Compare.table1_row (fun () -> Generators.multiplier ~name:"mj" ~bits:5 lib) ] in
  let arr_text = Smt_core.Report_json.of_rows rows in
  Alcotest.(check bool) "array" true (arr_text.[0] = '[');
  Alcotest.(check bool) "three entries" true (contains arr_text "Imp.-SMT")

(* --- seed robustness --- *)

let test_orderings_hold_across_seeds () =
  List.iter
    (fun seed ->
      let options = { Flow.default_options with Flow.seed } in
      let reports =
        Flow.completed
          (Flow.run_all ~options (fun () -> Generators.multiplier ~name:"ms" ~bits:6 lib))
      in
      match reports with
      | [ d; c; i ] ->
        Alcotest.(check bool) (Printf.sprintf "seed %d: area con>imp>dual" seed) true
          (c.Flow.area > i.Flow.area && i.Flow.area > d.Flow.area);
        Alcotest.(check bool) (Printf.sprintf "seed %d: leak dual>con>imp" seed) true
          (d.Flow.standby_nw > c.Flow.standby_nw && c.Flow.standby_nw > i.Flow.standby_nw);
        List.iter
          (fun (r : Flow.report) ->
            Alcotest.(check bool) (Printf.sprintf "seed %d timing met" seed) true
              r.Flow.timing_met)
          reports
      | _ -> Alcotest.fail "three reports")
    [ 2; 5; 11 ]

(* --- standby protocol --- *)

let test_standby_improved_flow_clean () =
  let nl = Generators.multiplier ~name:"m6s" ~bits:6 lib in
  ignore (Flow.run Flow.Improved_smt nl);
  let o = Standby.simulate nl in
  Alcotest.(check bool) "state preserved" true o.Standby.state_preserved;
  Alcotest.(check bool) "outputs defined while asleep" true
    o.Standby.outputs_defined_in_standby;
  Alcotest.(check int) "no X into awake logic" 0 o.Standby.x_leaks_into_awake_logic;
  Alcotest.(check bool) "first wake cycle correct" true o.Standby.first_wake_cycle_correct;
  Alcotest.(check bool) "all wake cycles correct" true o.Standby.all_wake_cycles_correct

let test_standby_conventional_flow_clean () =
  let nl = Generators.multiplier ~name:"m6t" ~bits:6 lib in
  ignore (Flow.run Flow.Conventional_smt nl);
  let o = Standby.simulate nl in
  Alcotest.(check bool) "embedded holders keep outputs" true
    o.Standby.outputs_defined_in_standby;
  Alcotest.(check bool) "wake correct" true o.Standby.all_wake_cycles_correct

let test_standby_dual_vth_trivially_clean () =
  let nl = Generators.multiplier ~name:"m6u" ~bits:6 lib in
  ignore (Flow.run Flow.Dual_vth nl);
  let o = Standby.simulate nl in
  (* nothing floats: there is no MT logic at all *)
  Alcotest.(check int) "no leaks" 0 o.Standby.x_leaks_into_awake_logic;
  Alcotest.(check bool) "state preserved" true o.Standby.state_preserved

let test_standby_without_holders_leaks () =
  (* build the improved structure but suppress holder minimisation AND
     delete the holders: floating nets now reach awake logic *)
  let nl = Generators.multiplier ~name:"m6v" ~bits:6 lib in
  let probe = 1e6 in
  let sta = Sta.analyze (Sta.config ~clock_period:probe ()) nl in
  let period = (probe -. Sta.wns sta) *. 1.05 in
  ignore (Vth_assign.assign (Sta.config ~clock_period:period ()) nl);
  ignore (Mt_replace.replace Mt_replace.Improved nl);
  let place = Placement.place nl in
  ignore (Switch_insert.insert place);
  (* strip every holder *)
  Netlist.iter_insts nl (fun iid ->
      if (Netlist.cell nl iid).Smt_cell.Cell.kind = Smt_cell.Func.Holder then
        Netlist.remove_inst nl iid);
  let o = Standby.simulate nl in
  Alcotest.(check bool) "X escapes without holders" true
    (o.Standby.x_leaks_into_awake_logic > 0 || not o.Standby.outputs_defined_in_standby)

let test_mte_tree_delay () =
  let nl = Generators.multiplier ~name:"m8mte" ~bits:8 lib in
  ignore (Flow.run Flow.Improved_smt nl);
  let cfg = Sta.config ~clock_period:5000.0 () in
  let d = Standby.mte_tree_delay cfg nl in
  Alcotest.(check bool) "non-negative" true (d >= 0.0);
  (* the dual flow has no MTE net at all *)
  let nl2 = Generators.multiplier ~name:"m8mtd" ~bits:8 lib in
  ignore (Flow.run Flow.Dual_vth nl2);
  Alcotest.(check (float 1e-9)) "no MTE, no delay" 0.0 (Standby.mte_tree_delay cfg nl2)

let test_congested_length () =
  let _, place = placed () in
  let r = Global_router.route place in
  let pts =
    [ Smt_util.Geom.point 5.0 5.0; Smt_util.Geom.point 40.0 12.0; Smt_util.Geom.point 20.0 30.0 ]
  in
  let weighted = Global_router.congested_length r pts in
  let plain = Smt_util.Geom.spanning_length pts in
  Alcotest.(check bool) "at least the plain MST" true (weighted >= plain -. 1e-6);
  (* a saturated grid prices everything longer *)
  let tight = Global_router.route ~capacity:1 place in
  Alcotest.(check bool) "congestion inflates" true
    (Global_router.congested_length tight pts >= weighted -. 1e-6);
  Alcotest.(check (float 1e-9)) "degenerate set" 0.0
    (Global_router.congested_length r [ Smt_util.Geom.point 1.0 1.0 ])

let test_reopt_with_measured_lengths () =
  (* the reopt pass accepts router-measured VGND lengths *)
  let nl = Generators.multiplier ~name:"m6rl" ~bits:6 lib in
  let probe = 1e6 in
  let sta = Sta.analyze (Sta.config ~clock_period:probe ()) nl in
  let period = (probe -. Sta.wns sta) *. 1.05 in
  ignore (Vth_assign.assign (Sta.config ~clock_period:period ()) nl);
  ignore (Mt_replace.replace Mt_replace.Improved nl);
  let place = Placement.place nl in
  let ins = Switch_insert.insert place in
  ignore (Smt_core.Cluster.build place ~mte_net:ins.Switch_insert.mte_net);
  let routed = Global_router.route place in
  let length_of sw =
    let members = Netlist.switch_members nl sw in
    let pts =
      List.filter_map (fun m -> Placement.inst_point_opt place m) members
      @ (match Placement.inst_point_opt place sw with Some p -> [ p ] | None -> [])
    in
    Global_router.congested_length routed pts
  in
  let r = Smt_core.Reopt.reoptimize ~length_of place in
  Alcotest.(check int) "clean after measured-length reopt" 0 r.Smt_core.Reopt.violations_after

(* --- multi-corner signoff --- *)

let test_signoff_typical_matches_base () =
  let nl, _ = Lazy.force flow_report in
  let tech = Library.tech lib in
  let cfg = Sta.config ~clock_period:5000.0 () in
  let s =
    Smt_core.Signoff.run ~corners:[ Smt_cell.Corner.typical tech ] cfg nl
  in
  (match s.Smt_core.Signoff.entries with
  | [ e ] ->
    let sta = Sta.analyze cfg nl in
    Alcotest.(check (float 1e-6)) "wns matches plain STA" (Sta.wns sta)
      e.Smt_core.Signoff.wns_ps;
    Alcotest.(check bool) "met" true e.Smt_core.Signoff.timing_met
  | _ -> Alcotest.fail "one entry expected")

let test_signoff_corner_ordering () =
  let nl, _ = Lazy.force flow_report in
  let cfg = Sta.config ~clock_period:5000.0 () in
  let s = Smt_core.Signoff.run cfg nl in
  Alcotest.(check int) "four corners" 4 (List.length s.Smt_core.Signoff.entries);
  (* worst timing at a slow corner, worst leakage at fast/hot *)
  Alcotest.(check bool) "worst timing is slow" true
    (s.Smt_core.Signoff.worst_timing.Smt_core.Signoff.corner.Smt_cell.Corner.process
    = Smt_cell.Corner.Slow);
  let wl = s.Smt_core.Signoff.worst_leakage.Smt_core.Signoff.corner in
  Alcotest.(check bool) "worst leakage is fast and hot" true
    (wl.Smt_cell.Corner.process = Smt_cell.Corner.Fast
    && wl.Smt_cell.Corner.temperature_c > 100.0);
  Alcotest.(check bool) "renders" true
    (String.length (Smt_core.Signoff.render s) > 50)

let test_signoff_detects_slow_corner_violation () =
  let nl, _ = Lazy.force flow_report in
  (* pick a period the typical corner barely meets: the slow corner fails *)
  let probe = Sta.analyze (Sta.config ~clock_period:1e6 ()) nl in
  let crit = 1e6 -. Sta.wns probe in
  let cfg = Sta.config ~clock_period:(crit *. 1.02) () in
  let s = Smt_core.Signoff.run cfg nl in
  Alcotest.(check bool) "not clean across corners" true (not s.Smt_core.Signoff.all_met);
  Alcotest.(check bool) "typical itself met" true
    (List.exists
       (fun e ->
         e.Smt_core.Signoff.corner.Smt_cell.Corner.process = Smt_cell.Corner.Typical
         && e.Smt_core.Signoff.timing_met)
       s.Smt_core.Signoff.entries)

let () =
  Alcotest.run "smt_system"
    [
      ( "global-router",
        [
          Alcotest.test_case "routes everything" `Quick test_router_routes_everything;
          Alcotest.test_case "length lower bound" `Quick test_router_length_lower_bound;
          Alcotest.test_case "deterministic" `Quick test_router_deterministic;
          Alcotest.test_case "capacity vs overflow" `Quick test_router_capacity_relieves_overflow;
          Alcotest.test_case "detour factor" `Quick test_router_detour_factor;
          Alcotest.test_case "to parasitics" `Quick test_router_parasitics;
          Alcotest.test_case "congested length" `Quick test_congested_length;
          Alcotest.test_case "reopt with measured lengths" `Quick test_reopt_with_measured_lengths;
        ] );
      ( "reports",
        [
          Alcotest.test_case "timing" `Quick test_timing_report;
          Alcotest.test_case "timing violated" `Quick test_timing_report_violated;
          Alcotest.test_case "power" `Quick test_power_report;
          Alcotest.test_case "area" `Quick test_area_report;
          Alcotest.test_case "summary" `Quick test_summary;
        ] );
      ( "standby-protocol",
        [
          Alcotest.test_case "improved flow clean" `Quick test_standby_improved_flow_clean;
          Alcotest.test_case "conventional flow clean" `Quick test_standby_conventional_flow_clean;
          Alcotest.test_case "dual-vth trivially clean" `Quick test_standby_dual_vth_trivially_clean;
          Alcotest.test_case "holders are load-bearing" `Quick test_standby_without_holders_leaks;
          Alcotest.test_case "mte tree delay" `Quick test_mte_tree_delay;
        ] );
      ( "exports",
        [
          Alcotest.test_case "sdf" `Quick test_sdf_export;
          Alcotest.test_case "json" `Quick test_json_export;
        ] );
      ( "robustness",
        [ Alcotest.test_case "orderings across seeds" `Slow test_orderings_hold_across_seeds ] );
      ( "signoff",
        [
          Alcotest.test_case "typical matches base" `Quick test_signoff_typical_matches_base;
          Alcotest.test_case "corner ordering" `Quick test_signoff_corner_ordering;
          Alcotest.test_case "slow-corner violation" `Quick test_signoff_detects_slow_corner_violation;
        ] );
    ]
