(* Tests for the domain worker pool and the determinism contract of
   parallel execution: a run at any job count must produce the same
   reports, the same counter totals, and the same QoR snapshot as the
   sequential run. *)

module Pool = Smt_util.Pool
module Par = Smt_obs.Par
module Metrics = Smt_obs.Metrics
module Trace = Smt_obs.Trace
module Snapshot = Smt_obs.Snapshot
module Flow = Smt_core.Flow
module Qor = Smt_core.Qor
module Suite = Smt_circuits.Suite
module Library = Smt_cell.Library

let lib = Library.default ()

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_ordering () =
  let xs = List.init 25 Fun.id in
  Alcotest.(check (list int))
    "order preserved"
    (List.map (fun x -> x * x) xs)
    (Pool.map ~jobs:4 (fun x -> x * x) xs)

let test_pool_exception_propagation () =
  let f x = if x mod 3 = 2 then failwith (string_of_int x) else x in
  match Pool.map ~jobs:4 f (List.init 12 Fun.id) with
  | _ -> Alcotest.fail "expected the job exception to re-raise"
  | exception Failure s ->
    Alcotest.(check string) "first failing input wins" "2" s

(* Shutdown hardening: the exception must re-raise only after every
   worker domain has been joined.  Observable contract: by the time the
   caller sees the exception, every job has started and every non-failing
   job has finished — workers drained the queue and were joined, so no
   domain outlives the call.  If a worker were leaked (re-raise before
   join), the counters would still be moving when we read them. *)
let test_pool_failure_leaks_no_domains () =
  let n = 16 in
  let started = Atomic.make 0 and finished = Atomic.make 0 in
  (match
     Pool.map ~jobs:4
       (fun x ->
         Atomic.incr started;
         if x = 5 then failwith "boom";
         Atomic.incr finished;
         x)
       (List.init n Fun.id)
   with
  | _ -> Alcotest.fail "expected the job exception to re-raise"
  | exception Failure s -> Alcotest.(check string) "failing job's exception" "boom" s);
  Alcotest.(check int) "all jobs drained before re-raise" n (Atomic.get started);
  Alcotest.(check int) "all non-failing jobs completed" (n - 1) (Atomic.get finished)

let test_pool_jobs1_in_place () =
  let saw_worker = ref false in
  let r =
    Pool.map ~jobs:1
      (fun x ->
        if Pool.worker_index () <> None then saw_worker := true;
        x + 1)
      [ 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "sequential result" [ 2; 3; 4 ] r;
  Alcotest.(check bool) "ran on the calling domain" false !saw_worker

let test_pool_nested_degrades () =
  let xs = List.init 6 Fun.id in
  let r =
    Pool.map ~jobs:2
      (fun x ->
        let wi = Pool.worker_index () in
        Alcotest.(check bool) "outer jobs run on workers" true (wi <> None);
        let inner =
          Pool.map ~jobs:2
            (fun y ->
              Alcotest.(check bool) "nested map stays on the same worker" true
                (Pool.worker_index () = wi);
              x * y)
            [ 1; 2; 3 ]
        in
        List.fold_left ( + ) 0 inner)
      xs
  in
  Alcotest.(check (list int)) "nested results" (List.map (fun x -> 6 * x) xs) r

let test_default_jobs_positive () =
  Alcotest.(check bool) "at least one job" true (Pool.default_jobs () >= 1)

(* SMT_JOBS parsing: valid positive integers win (whitespace tolerated),
   everything else falls back to the recommended domain count.  putenv
   cannot truly unset a variable, so the unset case is approximated by
   the empty string — which takes the same fallback path. *)
let with_jobs_env value f =
  let saved = Sys.getenv_opt "SMT_JOBS" in
  Unix.putenv "SMT_JOBS" value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv "SMT_JOBS" (Option.value saved ~default:""))
    f

let test_default_jobs_env_parsing () =
  let fallback = with_jobs_env "" Pool.default_jobs in
  Alcotest.(check bool) "fallback is positive" true (fallback >= 1);
  List.iter
    (fun bad ->
      Alcotest.(check int)
        (Printf.sprintf "%S falls back" bad)
        fallback
        (with_jobs_env bad Pool.default_jobs))
    [ "0"; "-3"; "garbage"; "2.5"; "1e3"; "  " ];
  Alcotest.(check int) "valid value wins" 3 (with_jobs_env "3" Pool.default_jobs);
  Alcotest.(check int) "surrounding whitespace trimmed" 5
    (with_jobs_env " 5 " Pool.default_jobs);
  Alcotest.(check int) "huge explicit value taken verbatim" 4096
    (with_jobs_env "4096" Pool.default_jobs)

(* ------------------------------------------------------------------ *)
(* Par: scoped metric / trace collection                               *)
(* ------------------------------------------------------------------ *)

let test_par_counter_totals () =
  let c = Metrics.counter "test_parallel.work" in
  let run jobs =
    let before = Metrics.counter_value c in
    ignore (Par.map ~jobs (fun x -> Metrics.incr ~by:x c) (List.init 11 Fun.id));
    Metrics.counter_value c - before
  in
  Alcotest.(check int) "sequential total" 55 (run 1);
  Alcotest.(check int) "parallel total matches" 55 (run 4)

let test_par_gauge_input_order () =
  let g = Metrics.gauge "test_parallel.gauge" in
  ignore (Par.map ~jobs:3 (fun x -> Metrics.set g (float_of_int x)) [ 3; 1; 7 ]);
  Alcotest.(check (float 1e-9)) "last input wins, as sequentially" 7.0
    (Metrics.gauge_value g)

let test_par_trace_tids () =
  Trace.enable ();
  Trace.clear ();
  ignore (Par.map ~jobs:2 (fun x -> Trace.with_span "job" (fun () -> x)) [ 0; 1; 2 ]);
  Trace.disable ();
  let tids = List.sort compare (List.map (fun e -> e.Trace.ev_tid) (Trace.events ())) in
  Alcotest.(check (list int)) "one trace row per job, by input index" [ 2; 3; 4 ] tids

(* ------------------------------------------------------------------ *)
(* Ledger appends under parallel fan-out                               *)
(* ------------------------------------------------------------------ *)

(* Every worker of a Par.map appends to the same ledger file: the lock +
   single-write protocol must land one intact line per job, no torn or
   interleaved records. *)
let test_ledger_parallel_append_integrity () =
  let module Ledger = Smt_obs.Ledger in
  let path = Filename.temp_file "smt_ledger" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path with Sys_error _ -> ());
      try Sys.remove (path ^ ".lock") with Sys_error _ -> ())
  @@ fun () ->
  let n = 24 in
  ignore
    (Par.map ~jobs:6
       (fun i ->
         let w =
           {
             Ledger.lw_workload =
               Snapshot.workload
                 ~name:(Printf.sprintf "w%02d" i)
                 ~qor:[ ("value", float_of_int i) ]
                 ~counters:[] ~stage_ms:[];
             Ledger.lw_prof = [];
           }
         in
         Ledger.append path (Ledger.make ~time:(float_of_int i) ~kind:"run" [ w ]))
       (List.init n Fun.id));
  match Ledger.read path with
  | Error e -> Alcotest.fail e
  | Ok { Ledger.records; skipped } ->
    Alcotest.(check int) "no torn lines" 0 skipped;
    Alcotest.(check int) "every append landed" n (List.length records);
    let names =
      List.sort compare
        (List.concat_map
           (fun (r : Ledger.record) ->
             List.map
               (fun (lw : Ledger.workload) ->
                 lw.Ledger.lw_workload.Snapshot.w_name)
               r.Ledger.r_workloads)
           records)
    in
    Alcotest.(check (list string)) "payloads intact"
      (List.init n (Printf.sprintf "w%02d"))
      names

(* ------------------------------------------------------------------ *)
(* Flow / QoR determinism across job counts                            *)
(* ------------------------------------------------------------------ *)

let report_key (r : Flow.report) =
  ( Flow.technique_name r.Flow.technique,
    (r.Flow.area, r.Flow.standby_nw, r.Flow.wns),
    (r.Flow.n_clusters, r.Flow.n_holders, r.Flow.total_switch_width) )

let run_all_at jobs =
  let before = Metrics.counters () in
  let reports = Flow.completed (Flow.run_all ~jobs (fun () -> Suite.circuit_a lib)) in
  let after = Metrics.counters () in
  let delta =
    List.filter_map
      (fun (c, v) ->
        let v0 = Option.value (List.assoc_opt c before) ~default:0 in
        if v <> v0 then Some (c, v - v0) else None)
      after
  in
  (List.map report_key reports, List.sort compare delta)

let test_run_all_deterministic () =
  let r1, c1 = run_all_at 1 in
  let r4, c4 = run_all_at 4 in
  Alcotest.(check int) "three techniques" 3 (List.length r1);
  Alcotest.(check bool) "reports identical across job counts" true (r1 = r4);
  Alcotest.(check bool) "non-trivial counter movement" true (c1 <> []);
  Alcotest.(check bool) "counter totals identical across job counts" true (c1 = c4)

let strip_wallclock (s : Snapshot.t) =
  Snapshot.make ~tag:s.Snapshot.s_tag
    (List.map
       (fun (w : Snapshot.workload) ->
         Snapshot.workload ~name:w.Snapshot.w_name ~qor:w.Snapshot.w_qor
           ~counters:w.Snapshot.w_counters ~stage_ms:[])
       s.Snapshot.s_workloads)

let test_qor_collect_deterministic () =
  let s1 = strip_wallclock (Qor.collect ~jobs:1 ~tag:"par" ()) in
  let s4 = strip_wallclock (Qor.collect ~jobs:4 ~tag:"par" ()) in
  Alcotest.(check string) "snapshot JSON identical modulo wall-clock"
    (Snapshot.to_json s1) (Snapshot.to_json s4)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "order preserved" `Quick test_pool_ordering;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception_propagation;
          Alcotest.test_case "failure leaks no domains" `Quick
            test_pool_failure_leaks_no_domains;
          Alcotest.test_case "jobs=1 runs in place" `Quick test_pool_jobs1_in_place;
          Alcotest.test_case "nested maps degrade" `Quick test_pool_nested_degrades;
          Alcotest.test_case "default_jobs positive" `Quick test_default_jobs_positive;
          Alcotest.test_case "SMT_JOBS parsing" `Quick test_default_jobs_env_parsing;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "parallel appends stay intact" `Quick
            test_ledger_parallel_append_integrity;
        ] );
      ( "par",
        [
          Alcotest.test_case "counter totals merge" `Quick test_par_counter_totals;
          Alcotest.test_case "gauges resolve in input order" `Quick
            test_par_gauge_input_order;
          Alcotest.test_case "trace rows per job" `Quick test_par_trace_tids;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "run_all jobs=1 vs jobs=4" `Quick test_run_all_deterministic;
          Alcotest.test_case "qor snapshot jobs=1 vs jobs=4" `Quick
            test_qor_collect_deterministic;
        ] );
    ]
