(* Interchange example: dump a transformed Selective-MT netlist to the
   structural-Verilog subset, read it back, and prove nothing was lost;
   then extract parasitics and round-trip them through the SPEF subset.

     dune exec examples/netlist_io.exe *)

module Netlist = Smt_netlist.Netlist
module Writer = Smt_netlist.Writer
module Parser = Smt_netlist.Parser
module Check = Smt_check.Drc
module Nl_stats = Smt_netlist.Nl_stats
module Placement = Smt_place.Placement
module Parasitics = Smt_route.Parasitics
module Flow = Smt_core.Flow
module Generators = Smt_circuits.Generators

let () =
  let lib = Smt_cell.Library.default () in
  let nl = Generators.multiplier ~name:"mult8" ~bits:8 lib in
  ignore (Flow.run Flow.Improved_smt nl);
  Printf.printf "after the improved flow: %s\n"
    (Format.asprintf "%a" Nl_stats.pp (Nl_stats.compute nl));

  (* netlist round trip *)
  let text = Writer.to_string nl in
  let nl2 = Parser.of_string ~lib text in
  Printf.printf "\ndump is %d bytes; parsed back: %s\n" (String.length text)
    (Format.asprintf "%a" Nl_stats.pp (Nl_stats.compute nl2));
  Printf.printf "round-tripped netlist validates: %b\n"
    (Check.is_valid ~phase:Check.Post_mt nl2);
  Printf.printf "functionally equivalent to the original: %b\n"
    (Smt_sim.Equiv.equivalent ~vectors:32 nl nl2);

  (* SPEF round trip from a fresh placement of the parsed netlist *)
  let place = Placement.place nl2 in
  let ext = Parasitics.extract place in
  let spef = Parasitics.to_spef ext nl2 in
  let back = Parasitics.of_spef ~lib nl2 spef in
  Printf.printf "\nSPEF dump is %d bytes; total wirelength %.1f um (reparsed: %.1f um)\n"
    (String.length spef)
    (Parasitics.total_wirelength ext)
    (Parasitics.total_wirelength back);

  (* show a fragment of each format *)
  let first_lines n s =
    String.split_on_char '\n' s |> List.filteri (fun i _ -> i < n) |> String.concat "\n"
  in
  Printf.printf "\n--- netlist dump (first lines) ---\n%s\n" (first_lines 12 text);
  Printf.printf "\n--- SPEF dump (first lines) ---\n%s\n" (first_lines 10 spef)
